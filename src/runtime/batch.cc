#include "runtime/batch.hh"

#include <utility>

#include "common/logging.hh"
#include "integrity/integrity.hh"
#include "restructure/cpu_exec.hh"
#include "trace/trace.hh"

namespace dmx::runtime
{

Tick
BatchEvent::completeTime() const
{
    if (!_state)
        dmx_fatal("BatchEvent::completeTime on an invalid "
                  "(default-constructed) event");
    if (_state->status == Status::Pending)
        dmx_fatal("BatchEvent::completeTime on a pending batch; "
                  "finish() first");
    return _state->at;
}

const std::vector<BatchRecord> &
BatchEvent::records() const
{
    if (!_state)
        dmx_fatal("BatchEvent::records on an invalid "
                  "(default-constructed) event");
    return _state->records;
}

namespace detail
{

/**
 * The batch execution engine: one Batch per submitBatch call, kept
 * alive by the member callbacks scheduled against it. Members run
 * through the per-command reliability engine (launchBatchMember) or
 * the chain engine (enqueueChainHooked) with settle outcomes routed
 * here; this engine owns the shared doorbell flag and completion
 * delivery - coalesced notifications or record polls - across them.
 */
struct BatchEngine
{
    struct Batch : std::enable_shared_from_this<Batch>
    {
        Context *ctx = nullptr;
        BatchOptions opts;
        std::shared_ptr<BatchState> state;
        /// The batch's shared doorbell: false until the first fabric
        /// submission of any member rings it (full dma_setup); every
        /// later submission is an engine descriptor fetch.
        std::shared_ptr<bool> programmed = std::make_shared<bool>(false);
        std::size_t n = 0;
        std::size_t settled_count = 0; ///< members device-settled
        std::size_t fired = 0;         ///< member events fired
        /// Ok members awaiting the window's coalesced notification.
        std::vector<std::size_t> window;
        Status first_err = Status::Ok;
        /// Per-member chain handles (invalid unless Kind::Chain).
        std::vector<ChainEvent> chain_events;
        /// Per-member pre-compiled plans (Restructure members only).
        std::vector<
            std::vector<std::shared_ptr<const drx::CompiledKernel>>>
            plans;

        Platform &plat() { return ctx->platform(); }

        std::size_t
        windowSize() const
        {
            return opts.coalesce_threshold
                       ? static_cast<std::size_t>(opts.coalesce_threshold)
                       : n;
        }

        /** Fire member @p i's event at @p at (its completion reached
         *  the host behind a notification or poll). */
        void
        fireAt(std::size_t i, Status st, Tick at)
        {
            auto self = shared_from_this();
            auto sp = state->members[i];
            plat()._eq.schedule(at, [self, sp, st, at] {
                fireEventState(sp, st, at);
                ++self->fired;
                self->maybeFinish();
            });
        }

        /** Fire member @p i's event immediately (error-path parity
         *  with the per-command engine: no notification). */
        void
        fireNow(std::size_t i, Status st)
        {
            fireEventState(state->members[i], st, plat().now());
            ++fired;
            maybeFinish();
        }

        void
        maybeFinish()
        {
            if (fired < n || state->status != Status::Pending)
                return;
            state->status = first_err;
            state->at = plat().now();
        }

        /** Pay ONE coalesced notification for the queued Ok members. */
        void
        flushWindow()
        {
            Platform &p = plat();
            const auto notif = p._irq->notifyBatch(
                static_cast<unsigned>(window.size()));
            ++state->notifications;
            if (auto *tb = trace::active()) {
                tb->instant(trace::Category::Driver,
                            notif.delivered ? "batch_irq"
                                            : "batch_irq_lost",
                            "runtime.irq", p.now(),
                            static_cast<std::uint64_t>(window.size()));
                if (window.size() > 1)
                    tb->count("driver.suppressed_notifications", p.now(),
                              static_cast<double>(window.size() - 1));
            }
            const Tick at = p.now() + notif.latency;
            for (const std::size_t i : window)
                fireAt(i, Status::Ok, at);
            window.clear();
        }

        /** A member's device work settled (Ok or terminal error). */
        void
        memberSettled(std::size_t i, Status st)
        {
            Platform &p = plat();
            BatchRecord &rec = state->records[i];
            rec.status = st;
            rec.at = p.now();
            if (chain_events[i].valid()) {
                rec.retries = chain_events[i].retries();
                rec.chain_failed_index = chain_events[i].failedIndex();
            } else {
                rec.retries = state->members[i]->retries;
                rec.degraded = state->members[i]->degraded;
            }
            ++settled_count;
            if (st != Status::Ok) {
                // Errors keep the per-command engine's delivery: the
                // member event fires at device-settle time with no
                // notification, so a failing member neither delays
                // nor poisons its siblings.
                if (first_err == Status::Ok)
                    first_err = st;
                fireNow(i, st);
            } else if (!p._plan) {
                // Fault-free platforms keep the seed's immediate host
                // visibility (parity with the per-command settleOk).
                fireNow(i, Status::Ok);
            } else if (opts.completion ==
                       BatchOptions::CompletionMode::Poll) {
                // Completion-record polling: no interrupt, the host
                // discovers the record at the poll detection latency.
                const auto notif = p._irq->pollRecord();
                if (auto *tb = trace::active())
                    tb->instant(trace::Category::Driver, "record_poll",
                                "runtime.irq", p.now());
                fireAt(i, Status::Ok, p.now() + notif.latency);
            } else {
                window.push_back(i);
                if (window.size() >= windowSize())
                    flushWindow();
            }
            // The tail window (shrunk by failed members) flushes when
            // the last member settles, so no completion ever waits on
            // a window that cannot fill.
            if (settled_count == n && !window.empty())
                flushWindow();
        }
    };

    /** @return an Event wrapping @p st (BatchEvent::member bridge). */
    static Event
    wrap(std::shared_ptr<Event::State> st)
    {
        Event ev;
        ev._state = std::move(st);
        return ev;
    }

    static void
    launchMember(const std::shared_ptr<Batch> &b, std::size_t i,
                 const BatchOp &op)
    {
        Context *ctx = op.ctx ? op.ctx : b->ctx;
        auto on_settled = [b, i](Status st) { b->memberSettled(i, st); };

        if (op.kind == BatchOp::Kind::Chain) {
            b->chain_events[i] = enqueueChainHooked(
                *ctx, op.chain, b->opts.chain, b->programmed,
                std::move(on_settled));
            return;
        }

        AttemptFn work;
        AttemptFn fallback;
        bool fast_failable = false;
        switch (op.kind) {
          case BatchOp::Kind::Copy: {
            auto programmed = b->programmed;
            work = [ctx, from = op.device, src = op.in, dst = op.out,
                    dst_device = op.dst_device,
                    programmed](AttemptResult done) {
                Platform &p = ctx->platform();
                const auto bytes =
                    static_cast<std::uint64_t>(ctx->read(src).size());
                const pcie::NodeId sn = p._devices[from].node;
                const pcie::NodeId dn = p._devices[dst_device].node;
                auto deliver = [ctx, src, dst, done](bool ok) {
                    if (ok) {
                        ctx->write(dst, ctx->read(src));
                        Platform &plat = ctx->platform();
                        if (plat._integrity) {
                            // Silent payload corruption, exactly as in
                            // enqueueCopy: the DMA reports success but
                            // the copy differs by one flipped bit.
                            const Bytes &got = ctx->read(dst);
                            const auto act = plat._integrity->onPayload(
                                static_cast<std::uint64_t>(got.size()));
                            if (act.flip) {
                                Bytes data = got;
                                data[act.bit / 8] ^=
                                    static_cast<std::uint8_t>(
                                        1u << (act.bit % 8));
                                ctx->write(dst, std::move(data));
                                if (auto *tb = trace::active()) {
                                    tb->instant(
                                        trace::Category::Integrity,
                                        "payload_flip", "dma",
                                        plat.now(), act.bit);
                                    tb->count(
                                        "integrity.payload_flips",
                                        plat.now());
                                }
                            }
                        }
                    }
                    done(ok);
                };
                // The shared doorbell is claimed at submission (not
                // delivery) so concurrent siblings never double-ring
                // it; retries re-fetch their descriptor.
                const bool first = !*programmed;
                *programmed = true;
                if (p._plan && p._plan->p2pFaulted()) {
                    // Switch p2p path down: stage through the root
                    // complex as two descriptor legs (parity with
                    // enqueueCopy's reroute).
                    ++p._devices[from].fstats.rerouted_copies;
                    if (auto *tb = trace::active())
                        tb->count("runtime.rerouted_copies", p.now());
                    const pcie::NodeId rc = p._rc;
                    p._fabric->startDescriptorFlow(
                        {sn, rc, bytes}, first,
                        [ctx, rc, dn, bytes, deliver](bool ok) {
                            if (!ok) {
                                deliver(false);
                                return;
                            }
                            ctx->platform()._fabric->startDescriptorFlow(
                                {rc, dn, bytes}, false, deliver);
                        });
                    return;
                }
                p._fabric->startDescriptorFlow({sn, dn, bytes}, first,
                                               deliver);
            };
            fast_failable = false;
            break;
          }
          case BatchOp::Kind::Kernel: {
            work = [ctx, device = op.device, in = op.in,
                    out = op.out](AttemptResult done) {
                Platform &p = ctx->platform();
                Platform::Device &d = p._devices[device];
                kernels::OpCount opsc;
                Bytes result = d.fn(ctx->read(in), opsc);
                const Cycles cycles = accel::kernelCycles(d.spec, opsc);
                d.unit->submitChecked(
                    cycles, [ctx, out, done,
                             result = std::move(result)](bool ok) mutable {
                        if (ok)
                            ctx->write(out, std::move(result));
                        done(ok);
                    });
            };
            fast_failable = true;
            break;
          }
          case BatchOp::Kind::Restructure: {
            auto kcopies =
                std::make_shared<std::vector<restructure::Kernel>>(
                    op.kernels);
            auto plans = b->plans[i];
            work = [ctx, device = op.device, in = op.in, out = op.out,
                    kcopies, plans](AttemptResult done) {
                Platform &p = ctx->platform();
                Platform::Device &d = p._devices[device];
                d.machine->resetAlloc();
                drx::RunResult total;
                restructure::Bytes cur = ctx->read(in);
                bool faulted = false;
                for (std::size_t j = 0; j < plans.size(); ++j) {
                    const auto installed =
                        drx::installPlan(plans[j], *d.machine);
                    restructure::Bytes out_bytes;
                    const drx::RunResult res = drx::runPlanOnDrx(
                        (*kcopies)[j].name, *installed, cur, *d.machine,
                        &out_bytes, p.now());
                    total += res;
                    if (res.faulted) {
                        faulted = true;
                        break;
                    }
                    cur = std::move(out_bytes);
                }
                if (faulted) {
                    // The machine trapped: charge the trap handling on
                    // the unit, then report the device error.
                    d.unit->submitChecked(total.total_cycles,
                                          [done](bool) { done(false); });
                    return;
                }
                auto result = std::make_shared<restructure::Bytes>(
                    std::move(cur));
                d.unit->submitChecked(
                    total.total_cycles,
                    [ctx, out, done, result](bool ok) {
                        if (ok)
                            ctx->write(out, std::move(*result));
                        done(ok);
                    });
            };
            // Degradation path: byte-identical restructuring on the
            // host pool, costed like the paper's CPU baseline.
            fallback = [ctx, in = op.in, out = op.out,
                        kcopies](AttemptResult done) {
                Platform &p = ctx->platform();
                double core_seconds = 0;
                Bytes cur = ctx->read(in);
                for (const restructure::Kernel &k : *kcopies) {
                    kernels::OpCount opsc;
                    cur = restructure::executeOnCpu(k, cur, &opsc);
                    core_seconds +=
                        cpu::restructureCoreSeconds(opsc, p._host_params);
                }
                p._host->submit(
                    core_seconds, p._host_params.max_job_cores,
                    [ctx, out, done, cur = std::move(cur)]() mutable {
                        ctx->write(out, std::move(cur));
                        done(true);
                    });
            };
            fast_failable = false;
            break;
          }
          case BatchOp::Kind::Chain:
            return; // handled above
        }
        launchBatchMember(*ctx, op.device, std::move(work),
                          std::move(fallback), fast_failable,
                          b->state->members[i], std::move(on_settled));
    }

    static BatchEvent
    submit(Context &ctx, const std::vector<BatchOp> &ops,
           const BatchOptions &opts)
    {
        Platform &p = ctx.platform();
        BatchEvent ev;
        ev._state = std::make_shared<BatchState>();
        ev._state->records.resize(ops.size());
        ev._state->members.reserve(ops.size());
        for (std::size_t i = 0; i < ops.size(); ++i)
            ev._state->members.push_back(
                std::make_shared<Event::State>());
        if (ops.empty()) {
            ev._state->status = Status::Ok;
            ev._state->at = p.now();
            return ev;
        }

        for (std::size_t i = 0; i < ops.size(); ++i) {
            const BatchOp &op = ops[i];
            if (op.ctx && &op.ctx->platform() != &p)
                dmx_fatal("submitBatch: member %zu's context belongs "
                          "to another platform", i);
            if (op.kind == BatchOp::Kind::Chain)
                continue; // the chain engine validates its own ops
            if (op.device >= p._devices.size())
                dmx_fatal("submitBatch: bad device %zu in member %zu",
                          op.device, i);
            switch (op.kind) {
              case BatchOp::Kind::Copy:
                if (op.dst_device >= p._devices.size())
                    dmx_fatal("submitBatch: bad copy destination %zu "
                              "in member %zu", op.dst_device, i);
                break;
              case BatchOp::Kind::Kernel:
                if (p._devices[op.device].is_drx)
                    dmx_fatal("submitBatch: Kernel member %zu on DRX "
                              "device '%s'; use Restructure", i,
                              p._devices[op.device].name.c_str());
                break;
              case BatchOp::Kind::Restructure:
                if (!p._devices[op.device].is_drx)
                    dmx_fatal("submitBatch: Restructure member %zu on "
                              "accelerator '%s'", i,
                              p._devices[op.device].name.c_str());
                if (op.kernels.empty())
                    dmx_fatal("submitBatch: Restructure member %zu has "
                              "no kernels", i);
                break;
              case BatchOp::Kind::Chain:
                break;
            }
        }

        auto b = std::make_shared<Batch>();
        b->ctx = &ctx;
        b->opts = opts;
        b->state = ev._state;
        b->n = ops.size();
        b->chain_events.resize(ops.size());
        b->plans.resize(ops.size());

        // Plan every Restructure member up front (through the
        // platform's compiled-kernel cache when enabled), mirroring
        // the chain engine: retries reinstall instead of recompiling.
        const bool cached = p.platformConfig().drx_cache.enabled;
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const BatchOp &op = ops[i];
            if (op.kind != BatchOp::Kind::Restructure)
                continue;
            Context *mctx = op.ctx ? op.ctx : &ctx;
            Platform &mp = mctx->platform();
            const drx::DrxConfig &cfg =
                mp._devices[op.device].machine->config();
            for (const restructure::Kernel &k : op.kernels) {
                if (cached) {
                    b->plans[i].push_back(
                        mp.drxCache().lookup(k, cfg, mp.now()).compiled);
                } else {
                    b->plans[i].push_back(
                        std::make_shared<const drx::CompiledKernel>(
                            drx::planKernel(k, cfg)));
                }
            }
        }

        if (auto *tb = trace::active()) {
            tb->instant(trace::Category::Command, "batch_submit",
                        "runtime.batch", p.now(),
                        static_cast<std::uint64_t>(ops.size()));
        }
        for (std::size_t i = 0; i < ops.size(); ++i)
            launchMember(b, i, ops[i]);
        return ev;
    }
};

} // namespace detail

Event
BatchEvent::member(std::size_t i) const
{
    if (!_state)
        dmx_fatal("BatchEvent::member on an invalid "
                  "(default-constructed) event");
    if (i >= _state->members.size())
        dmx_fatal("BatchEvent::member: index %zu out of %zu", i,
                  _state->members.size());
    return detail::BatchEngine::wrap(_state->members[i]);
}

BatchEvent
submitBatch(Context &ctx, const std::vector<BatchOp> &ops,
            const BatchOptions &opts)
{
    return detail::BatchEngine::submit(ctx, ops, opts);
}

} // namespace dmx::runtime
