#include "sim/sim_object.hh"

namespace dmx::sim
{

SimObject::SimObject(EventQueue &eq, std::string name)
    : _eq(eq), _name(std::move(name)), _stats(_name)
{
}

} // namespace dmx::sim
