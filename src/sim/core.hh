/**
 * @file
 * Global simulator-core mode selector.
 *
 * The fast core (indexed event queue, SoA flow engine, SIMD DRX inner
 * loops) is bit-for-bit equivalent to the legacy core - the differential
 * suite in tests/test_core_equiv.cc proves it - but the legacy arm stays
 * compiled in as the reference and as a kill switch:
 *
 *   DMX_LEGACY_CORE=1   select the legacy core at process start
 *   sim::setCoreMode()  override programmatically (differential tests)
 *
 * Engines sample the mode at construction, so a test can run the same
 * scenario through both arms in one process by flipping the mode between
 * engine instantiations.
 */

#ifndef DMX_SIM_CORE_HH
#define DMX_SIM_CORE_HH

namespace dmx::sim
{

enum class CoreMode
{
    Legacy,     ///< original pointer-chasing engines (reference arm)
    Optimized,  ///< slot-arena event queue + SoA flow engine
};

/**
 * @return the current core mode. First call consults the
 * DMX_LEGACY_CORE environment variable; later calls return the cached
 * (or overridden) value.
 */
CoreMode coreMode();

/** Override the core mode for engines constructed afterwards. */
void setCoreMode(CoreMode mode);

} // namespace dmx::sim

#endif // DMX_SIM_CORE_HH
