#include "sim/core.hh"

#include <atomic>
#include <cstdlib>

namespace dmx::sim
{

namespace
{

// -1 = not yet resolved; otherwise a CoreMode value.
std::atomic<int> g_mode{-1};

int
resolveFromEnv()
{
    const char *env = std::getenv("DMX_LEGACY_CORE");
    const bool legacy = env && env[0] != '\0' && env[0] != '0';
    return static_cast<int>(legacy ? CoreMode::Legacy : CoreMode::Optimized);
}

} // namespace

CoreMode
coreMode()
{
    int mode = g_mode.load(std::memory_order_relaxed);
    if (mode < 0) {
        mode = resolveFromEnv();
        int expected = -1;
        if (!g_mode.compare_exchange_strong(expected, mode,
                                            std::memory_order_relaxed)) {
            mode = expected;
        }
    }
    return static_cast<CoreMode>(mode);
}

void
setCoreMode(CoreMode mode)
{
    g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

} // namespace dmx::sim
