/**
 * @file
 * The discrete-event simulation core.
 *
 * Events are closures scheduled at an absolute Tick. Ties are broken
 * first by an explicit priority, then by insertion order, so simulation
 * runs are fully deterministic.
 *
 * Two interchangeable engines live behind the same API (selected by
 * sim::coreMode() at construction; see DESIGN.md section 7h):
 *
 *  - Legacy: fat heap records owning the closure plus two shared
 *    control blocks per event. Kept verbatim as the reference arm.
 *  - Optimized: a binary heap of 24-byte POD keys over a slot arena
 *    with a free list. Scheduling allocates nothing once the arena is
 *    warm, cancellation is O(1), and pendingCount() is a counter read
 *    instead of a heap walk. Handles reference slots through one
 *    shared slot table and a per-occupancy sequence number, so a
 *    recycled slot can never be cancelled by a stale handle.
 *
 * Both engines fire events in identical (when, prio, seq) order - the
 * tie-break order is observable through traces and is pinned by the
 * property tests in tests/test_core_equiv.cc.
 */

#ifndef DMX_SIM_EVENTQ_HH
#define DMX_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/core.hh"

namespace dmx::sim
{

/** Scheduling priority; lower runs first at equal ticks. */
enum class Priority : int
{
    Interrupt = -10,   ///< interrupt delivery before normal work
    Default = 0,
    Stat = 10,         ///< sampling after the tick's real work
};

namespace detail
{

/** One arena slot: the closure plus liveness bookkeeping. */
struct EventSlot
{
    std::function<void()> fn;
    std::uint64_t seq = 0;       ///< sequence of the current occupant
    std::uint32_t next_free = 0; ///< free-list link while vacant
    bool cancelled = false;
    bool fired = false;
};

/** Slot arena shared between a queue and its outstanding handles. */
struct EventSlotTable
{
    std::vector<EventSlot> slots;
    std::size_t live = 0;        ///< pending, uncancelled events
};

} // namespace detail

/**
 * Handle to a scheduled event, allowing cancellation.
 *
 * Copies share cancellation state; cancelling any copy cancels the event.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. */
    void
    cancel()
    {
        if (_table) {
            auto &s = _table->slots[_slot];
            if (s.seq == _seq && !s.cancelled && !s.fired) {
                s.cancelled = true;
                s.fn = nullptr;
                --_table->live;
            }
            return;
        }
        if (_cancelled)
            *_cancelled = true;
    }

    /** @return true if this handle refers to a scheduled (live) event. */
    bool
    pending() const
    {
        if (_table) {
            if (_slot >= _table->slots.size())
                return false;
            const auto &s = _table->slots[_slot];
            return s.seq == _seq && !s.cancelled && !s.fired;
        }
        return _cancelled && !*_cancelled && !*_fired;
    }

  private:
    friend class EventQueue;
    // Legacy engine: two shared control blocks.
    std::shared_ptr<bool> _cancelled;
    std::shared_ptr<bool> _fired;
    // Optimized engine: shared slot table + (slot, seq) reference.
    std::shared_ptr<detail::EventSlotTable> _table;
    std::uint32_t _slot = 0;
    std::uint64_t _seq = 0;
};

/**
 * A deterministic discrete-event queue.
 *
 * The queue is not thread-safe; each engine instance is single-threaded
 * by design (reproducibility beats parallel host speed at this scale).
 * Intra-scenario parallelism comes from running independent engine
 * instances on separate threads (see sys::simulateSystemSharded).
 */
class EventQueue
{
  public:
    /** Engine selected by the global core mode at construction. */
    EventQueue() : EventQueue(coreMode()) {}

    /** Engine selected explicitly (differential tests). */
    explicit EventQueue(CoreMode mode);

    /** @return current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when absolute tick; must be >= now()
     * @param fn   closure executed when the event fires
     * @param prio tie-break priority
     * @return a handle that can cancel the event
     */
    EventHandle schedule(Tick when, std::function<void()> fn,
                         Priority prio = Priority::Default);

    /** Schedule @p fn @p delay ticks from now. */
    EventHandle
    scheduleIn(Tick delay, std::function<void()> fn,
               Priority prio = Priority::Default)
    {
        return schedule(_now + delay, std::move(fn), prio);
    }

    /**
     * Run a single event (cancelled records are skipped silently).
     * @return false when the queue is empty.
     */
    bool runOne();

    /** Run until the queue drains; @return final simulated time. */
    Tick run();

    /**
     * Run until simulated time would exceed @p limit. Events exactly at
     * @p limit still execute.
     * @return simulated time after the last executed event.
     */
    Tick runUntil(Tick limit);

    /** @return number of pending, uncancelled events. */
    std::size_t pendingCount() const;

    /** @return total events executed since construction. */
    std::uint64_t executedCount() const { return _executed; }

    /** Drop every pending event and reset time to zero. */
    void reset();

  private:
    struct Record
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        std::function<void()> fn;
        std::shared_ptr<bool> cancelled;
        std::shared_ptr<bool> fired;
    };

    /** Heap order: the earliest (when, prio, seq) is the heap top. */
    struct Later
    {
        bool
        operator()(const Record &a, const Record &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    /** Optimized engine: 24-byte POD heap key referencing a slot. */
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::int32_t prio;
        std::uint32_t slot;
    };

    /** Same ordering contract as Later, over POD keys. */
    struct KeyLater
    {
        bool
        operator()(const Key &a, const Key &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    static constexpr std::uint32_t no_slot = 0xffffffffu;

    /** Pop the heap top into a local and return it (legacy engine). */
    Record popTop();

    /** Pop the key-heap top (optimized engine). */
    Key popKeyTop();

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);

    bool runOneLegacy();
    bool runOneOptimized();

    const bool _optimized;

    // Legacy engine: a make-heap-managed vector rather than
    // std::priority_queue so that pendingCount() can walk live records.
    std::vector<Record> _heap;

    // Optimized engine: POD key heap + slot arena with free list.
    std::vector<Key> _kheap;
    std::shared_ptr<detail::EventSlotTable> _slots;
    std::uint32_t _free_head = no_slot;

    Tick _now = 0;
    std::uint64_t _next_seq = 0;
    std::uint64_t _executed = 0;
};

} // namespace dmx::sim

#endif // DMX_SIM_EVENTQ_HH
