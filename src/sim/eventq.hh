/**
 * @file
 * The discrete-event simulation core.
 *
 * Events are closures scheduled at an absolute Tick. Ties are broken
 * first by an explicit priority, then by insertion order, so simulation
 * runs are fully deterministic.
 */

#ifndef DMX_SIM_EVENTQ_HH
#define DMX_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"

namespace dmx::sim
{

/** Scheduling priority; lower runs first at equal ticks. */
enum class Priority : int
{
    Interrupt = -10,   ///< interrupt delivery before normal work
    Default = 0,
    Stat = 10,         ///< sampling after the tick's real work
};

/**
 * Handle to a scheduled event, allowing cancellation.
 *
 * Copies share cancellation state; cancelling any copy cancels the event.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. */
    void
    cancel()
    {
        if (_cancelled)
            *_cancelled = true;
    }

    /** @return true if this handle refers to a scheduled (live) event. */
    bool
    pending() const
    {
        return _cancelled && !*_cancelled && !*_fired;
    }

  private:
    friend class EventQueue;
    std::shared_ptr<bool> _cancelled;
    std::shared_ptr<bool> _fired;
};

/**
 * A deterministic discrete-event queue.
 *
 * The queue is not thread-safe; the whole simulator is single-threaded
 * by design (reproducibility beats parallel host speed at this scale).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** @return current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when absolute tick; must be >= now()
     * @param fn   closure executed when the event fires
     * @param prio tie-break priority
     * @return a handle that can cancel the event
     */
    EventHandle schedule(Tick when, std::function<void()> fn,
                         Priority prio = Priority::Default);

    /** Schedule @p fn @p delay ticks from now. */
    EventHandle
    scheduleIn(Tick delay, std::function<void()> fn,
               Priority prio = Priority::Default)
    {
        return schedule(_now + delay, std::move(fn), prio);
    }

    /**
     * Run a single event (cancelled records are skipped silently).
     * @return false when the queue is empty.
     */
    bool runOne();

    /** Run until the queue drains; @return final simulated time. */
    Tick run();

    /**
     * Run until simulated time would exceed @p limit. Events exactly at
     * @p limit still execute.
     * @return simulated time after the last executed event.
     */
    Tick runUntil(Tick limit);

    /** @return number of pending, uncancelled events. */
    std::size_t pendingCount() const;

    /** @return total events executed since construction. */
    std::uint64_t executedCount() const { return _executed; }

    /** Drop every pending event and reset time to zero. */
    void reset();

  private:
    struct Record
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        std::function<void()> fn;
        std::shared_ptr<bool> cancelled;
        std::shared_ptr<bool> fired;
    };

    /** Heap order: the earliest (when, prio, seq) is the heap top. */
    struct Later
    {
        bool
        operator()(const Record &a, const Record &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    /** Pop the heap top into a local and return it. */
    Record popTop();

    // A make-heap-managed vector rather than std::priority_queue so that
    // pendingCount() can walk live records.
    std::vector<Record> _heap;
    Tick _now = 0;
    std::uint64_t _next_seq = 0;
    std::uint64_t _executed = 0;
};

} // namespace dmx::sim

#endif // DMX_SIM_EVENTQ_HH
