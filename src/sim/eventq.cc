#include "sim/eventq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dmx::sim
{

EventQueue::EventQueue(CoreMode mode)
    : _optimized(mode == CoreMode::Optimized)
{
    if (_optimized)
        _slots = std::make_shared<detail::EventSlotTable>();
}

std::uint32_t
EventQueue::allocSlot()
{
    if (_free_head != no_slot) {
        const std::uint32_t slot = _free_head;
        _free_head = _slots->slots[slot].next_free;
        return slot;
    }
    const std::uint32_t slot =
        static_cast<std::uint32_t>(_slots->slots.size());
    _slots->slots.emplace_back();
    return slot;
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    auto &s = _slots->slots[slot];
    s.fn = nullptr;
    s.next_free = _free_head;
    _free_head = slot;
}

EventHandle
EventQueue::schedule(Tick when, std::function<void()> fn, Priority prio)
{
    if (when < _now) {
        dmx_panic("event scheduled in the past: when=%llu now=%llu",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(_now));
    }

    if (_optimized) {
        const std::uint64_t seq = _next_seq++;
        const std::uint32_t slot = allocSlot();
        auto &s = _slots->slots[slot];
        s.fn = std::move(fn);
        s.seq = seq;
        s.cancelled = false;
        s.fired = false;
        ++_slots->live;

        _kheap.push_back(Key{when, seq, static_cast<std::int32_t>(prio),
                             slot});
        std::push_heap(_kheap.begin(), _kheap.end(), KeyLater{});

        EventHandle handle;
        handle._table = _slots;
        handle._slot = slot;
        handle._seq = seq;
        return handle;
    }

    Record rec;
    rec.when = when;
    rec.prio = static_cast<int>(prio);
    rec.seq = _next_seq++;
    rec.fn = std::move(fn);
    rec.cancelled = std::make_shared<bool>(false);
    rec.fired = std::make_shared<bool>(false);

    EventHandle handle;
    handle._cancelled = rec.cancelled;
    handle._fired = rec.fired;

    _heap.push_back(std::move(rec));
    std::push_heap(_heap.begin(), _heap.end(), Later{});
    return handle;
}

EventQueue::Record
EventQueue::popTop()
{
    std::pop_heap(_heap.begin(), _heap.end(), Later{});
    Record rec = std::move(_heap.back());
    _heap.pop_back();
    return rec;
}

EventQueue::Key
EventQueue::popKeyTop()
{
    std::pop_heap(_kheap.begin(), _kheap.end(), KeyLater{});
    const Key key = _kheap.back();
    _kheap.pop_back();
    return key;
}

bool
EventQueue::runOneLegacy()
{
    while (!_heap.empty()) {
        Record rec = popTop();
        if (*rec.cancelled)
            continue;
        _now = rec.when;
        *rec.fired = true;
        ++_executed;
        rec.fn();
        return true;
    }
    return false;
}

bool
EventQueue::runOneOptimized()
{
    while (!_kheap.empty()) {
        const Key key = popKeyTop();
        auto &s = _slots->slots[key.slot];
        if (s.seq != key.seq) {
            // Slot was cancelled, freed, and recycled; the stale key
            // carries no event any more.
            continue;
        }
        if (s.cancelled) {
            freeSlot(key.slot);
            continue;
        }
        _now = key.when;
        s.fired = true;
        --_slots->live;
        auto fn = std::move(s.fn);
        // Free before firing: the closure may schedule new events and
        // immediately reuse this slot (a fresh seq keeps old handles
        // from ever seeing the new occupant as their event).
        freeSlot(key.slot);
        ++_executed;
        fn();
        return true;
    }
    return false;
}

bool
EventQueue::runOne()
{
    return _optimized ? runOneOptimized() : runOneLegacy();
}

Tick
EventQueue::run()
{
    while (runOne()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    if (_optimized) {
        while (!_kheap.empty()) {
            // Peek: drop dead keys without advancing time.
            const Key &top = _kheap.front();
            const auto &s = _slots->slots[top.slot];
            if (s.seq != top.seq || s.cancelled) {
                const Key key = popKeyTop();
                if (_slots->slots[key.slot].seq == key.seq)
                    freeSlot(key.slot);
                continue;
            }
            if (top.when > limit)
                break;
            runOne();
        }
        return _now;
    }

    while (!_heap.empty()) {
        // Peek: skip cancelled records without advancing time.
        if (*_heap.front().cancelled) {
            popTop();
            continue;
        }
        if (_heap.front().when > limit)
            break;
        runOne();
    }
    return _now;
}

std::size_t
EventQueue::pendingCount() const
{
    if (_optimized)
        return _slots->live;

    std::size_t live = 0;
    for (const Record &rec : _heap) {
        if (!*rec.cancelled)
            ++live;
    }
    return live;
}

void
EventQueue::reset()
{
    if (_optimized) {
        _kheap.clear();
        // A fresh table, so handles into the old epoch go stale rather
        // than aliasing recycled slots.
        _slots = std::make_shared<detail::EventSlotTable>();
        _free_head = no_slot;
    } else {
        _heap.clear();
    }
    _now = 0;
    _next_seq = 0;
    _executed = 0;
}

} // namespace dmx::sim
