#include "sim/eventq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dmx::sim
{

EventHandle
EventQueue::schedule(Tick when, std::function<void()> fn, Priority prio)
{
    if (when < _now) {
        dmx_panic("event scheduled in the past: when=%llu now=%llu",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(_now));
    }
    Record rec;
    rec.when = when;
    rec.prio = static_cast<int>(prio);
    rec.seq = _next_seq++;
    rec.fn = std::move(fn);
    rec.cancelled = std::make_shared<bool>(false);
    rec.fired = std::make_shared<bool>(false);

    EventHandle handle;
    handle._cancelled = rec.cancelled;
    handle._fired = rec.fired;

    _heap.push_back(std::move(rec));
    std::push_heap(_heap.begin(), _heap.end(), Later{});
    return handle;
}

EventQueue::Record
EventQueue::popTop()
{
    std::pop_heap(_heap.begin(), _heap.end(), Later{});
    Record rec = std::move(_heap.back());
    _heap.pop_back();
    return rec;
}

bool
EventQueue::runOne()
{
    while (!_heap.empty()) {
        Record rec = popTop();
        if (*rec.cancelled)
            continue;
        _now = rec.when;
        *rec.fired = true;
        ++_executed;
        rec.fn();
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (runOne()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!_heap.empty()) {
        // Peek: skip cancelled records without advancing time.
        if (*_heap.front().cancelled) {
            popTop();
            continue;
        }
        if (_heap.front().when > limit)
            break;
        runOne();
    }
    return _now;
}

std::size_t
EventQueue::pendingCount() const
{
    std::size_t live = 0;
    for (const Record &rec : _heap) {
        if (!*rec.cancelled)
            ++live;
    }
    return live;
}

void
EventQueue::reset()
{
    _heap.clear();
    _now = 0;
    _next_seq = 0;
    _executed = 0;
}

} // namespace dmx::sim
