/**
 * @file
 * SimObject: the common base for everything instantiated in a simulated
 * system (devices, links, CPUs, accelerators). A SimObject has a name,
 * a reference to the system event queue and an owned stats group.
 */

#ifndef DMX_SIM_SIM_OBJECT_HH
#define DMX_SIM_SIM_OBJECT_HH

#include <string>

#include "common/stats.hh"
#include "sim/eventq.hh"

namespace dmx::sim
{

/** Base class for named, event-driven simulation components. */
class SimObject
{
  public:
    /**
     * @param eq   system event queue; must outlive the object
     * @param name hierarchical dotted name, e.g. "system.pcie.sw0"
     */
    SimObject(EventQueue &eq, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    EventQueue &eventq() { return _eq; }
    const EventQueue &eventq() const { return _eq; }
    Tick now() const { return _eq.now(); }

    stats::StatGroup &statGroup() { return _stats; }

  private:
    EventQueue &_eq;
    std::string _name;
    stats::StatGroup _stats;
};

/** A SimObject driven by a clock; converts cycles to event-queue ticks. */
class ClockedObject : public SimObject
{
  public:
    /**
     * @param eq    system event queue
     * @param name  hierarchical name
     * @param clock clock domain this object runs in
     */
    ClockedObject(EventQueue &eq, std::string name, ClockDomain clock)
        : SimObject(eq, std::move(name)), _clock(clock)
    {
    }

    const ClockDomain &clock() const { return _clock; }

    /** @return ticks consumed by @p cycles of this object's clock. */
    Tick cyclesToTicks(Cycles cycles) const
    {
        return _clock.cyclesToTicks(cycles);
    }

  private:
    ClockDomain _clock;
};

} // namespace dmx::sim

#endif // DMX_SIM_SIM_OBJECT_HH
