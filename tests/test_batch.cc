/**
 * @file
 * Tests for batched descriptor submission & coalesced completions
 * (DESIGN.md 7j, src/runtime/batch.*).
 *
 * The contract under test: submitBatch() delivers payload bytes
 * identical to the per-command enqueue path while paying one doorbell
 * per batch (the rest are descriptor fetches) and one driver
 * notification per coalescing window (or pure completion-record
 * polls); member reliability - admission, watchdog, retries, deadline,
 * fallback - stays per member, so one failing member never poisons its
 * siblings; and all of it is deterministic, jobs-invariant, and
 * composes with the sys closed loop (SystemConfig::batch), descriptor
 * chaining, sharded execution, and the overload/serving engines.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "driver/interrupts.hh"
#include "exec/scenario.hh"
#include "fault/fault.hh"
#include "integrity/integrity.hh"
#include "restructure/ir.hh"
#include "runtime/batch.hh"
#include "runtime/runtime.hh"
#include "serve/serve.hh"
#include "sim/eventq.hh"
#include "sys/overload.hh"
#include "sys/system.hh"

using namespace dmx;
using namespace dmx::runtime;

namespace
{

/** Identity accelerator kernel with honest op counts. */
Bytes
passKernel(const Bytes &in, kernels::OpCount &ops)
{
    ops.int_ops += in.size();
    ops.bytes_read += in.size();
    ops.bytes_written += in.size();
    return in;
}

/** Deterministic payload for member @p i. */
Bytes
payloadFor(unsigned i, std::size_t bytes)
{
    Bytes b(bytes);
    for (std::size_t j = 0; j < b.size(); ++j)
        b[j] = static_cast<std::uint8_t>((i * 131u + j * 7u + 3u) & 0xffu);
    return b;
}

/** Total notification events, whatever mode NAPI picked. */
std::uint64_t
notifies(const Platform &plat)
{
    return plat.irq().interruptsDelivered() + plat.irq().pollsDelivered();
}

/** A small platform with two same-domain accelerators + benign plan. */
struct CopyRig
{
    Platform plat;
    fault::FaultPlan benign;
    DeviceId a0, a1;

    CopyRig()
    {
        plat.setFaultPlan(&benign);
        a0 = plat.addAccelerator("a0", accel::Domain::Crypto, passKernel);
        a1 = plat.addAccelerator("a1", accel::Domain::Crypto, passKernel);
    }
};

/** Stable digest of a settled batch for differential comparison. */
std::string
digest(Context &ctx, const BatchEvent &bev,
       const std::vector<BufferId> &outs)
{
    std::ostringstream os;
    os << static_cast<int>(bev.status()) << ':' << bev.notifications();
    for (const BatchRecord &r : bev.records())
        os << '|' << static_cast<int>(r.status) << ':' << r.at << ':'
           << r.retries << ':' << r.degraded;
    for (std::size_t i = 0; i < outs.size(); ++i) {
        os << '#';
        if (bev.records()[i].status == Status::Ok)
            for (const std::uint8_t c : ctx.read(outs[i]))
                os << static_cast<unsigned>(c) << ',';
    }
    return os.str();
}

restructure::Kernel
tileKernel(std::size_t side)
{
    restructure::Kernel k;
    k.name = "bt_scale" + std::to_string(side);
    k.input.dtype = DType::F32;
    k.input.shape = {side, side};
    k.stages.push_back(restructure::mapStage(
        {{restructure::MapFn::Scale, 1.0009765625f}}));
    return k;
}

/** Two-kernel / one-motion closed-loop app. */
sys::AppModel
motionApp(std::uint64_t bytes)
{
    sys::AppModel app;
    app.name = "bt" + std::to_string(bytes);
    app.input_bytes = bytes;
    for (int k = 0; k < 2; ++k) {
        sys::KernelTiming kt;
        kt.name = "k" + std::to_string(k);
        kt.cpu_core_seconds = 0.002;
        kt.accel_cycles = 50'000;
        kt.accel_freq_hz = 250e6;
        kt.out_bytes = bytes;
        app.kernels.push_back(kt);
    }
    sys::MotionTiming mt;
    mt.name = "m0";
    mt.cpu_core_seconds = 0.003;
    mt.drx_cycles = 50'000;
    mt.in_bytes = bytes;
    mt.out_bytes = bytes;
    app.motions.push_back(mt);
    return app;
}

} // namespace

// ------------------------------------------------- driver-layer units

TEST(BatchIrq, NotifyBatchSuppressesAllButOne)
{
    sim::EventQueue eq;
    driver::InterruptController irq(eq, "irq");
    const auto n = irq.notifyBatch(5);
    EXPECT_TRUE(n.delivered);
    EXPECT_GT(n.latency, 0u);
    EXPECT_EQ(irq.suppressedNotifications(), 4u);
    EXPECT_EQ(irq.interruptsDelivered() + irq.pollsDelivered(), 1u);

    // A zero-completion window is a no-op, not a notification.
    const auto z = irq.notifyBatch(0);
    EXPECT_TRUE(z.delivered);
    EXPECT_EQ(z.latency, 0u);
    EXPECT_EQ(irq.suppressedNotifications(), 4u);
    EXPECT_EQ(irq.interruptsDelivered() + irq.pollsDelivered(), 1u);
}

TEST(BatchIrq, PollRecordBypassesTheInterruptPath)
{
    sim::EventQueue eq;
    driver::InterruptController irq(eq, "irq");
    const auto n = irq.pollRecord();
    EXPECT_TRUE(n.delivered);
    EXPECT_EQ(n.latency, irq.params().polling_latency);
    EXPECT_EQ(irq.interruptsDelivered(), 0u);
    EXPECT_EQ(irq.pollsDelivered(), 1u);
    // Record polls are host-initiated: they never touch the NAPI rate
    // estimate or the drop counter.
    EXPECT_EQ(irq.droppedInterrupts(), 0u);
    EXPECT_FALSE(irq.polling());
}

// ------------------------------------------------ runtime batch engine

TEST(BatchCopies, SingleMemberBatchMatchesEnqueueCopyExactly)
{
    const Bytes payload = payloadFor(1, 2048);

    CopyRig legacy;
    Context lctx = legacy.plat.createContext();
    const BufferId lin = lctx.createBuffer(payload);
    const BufferId lout = lctx.createBuffer();
    const Event lev = lctx.queue(legacy.a0).enqueueCopy(lin, lout,
                                                        legacy.a1);
    lctx.finish();
    ASSERT_TRUE(lev.ok());

    CopyRig rig;
    Context ctx = rig.plat.createContext();
    const BufferId in = ctx.createBuffer(payload);
    const BufferId out = ctx.createBuffer();
    BatchOp op;
    op.kind = BatchOp::Kind::Copy;
    op.device = rig.a0;
    op.dst_device = rig.a1;
    op.in = in;
    op.out = out;
    const BatchEvent bev = submitBatch(ctx, {op});
    ctx.finish();
    ASSERT_TRUE(bev.ok());

    // A batch of one is the degenerate case: same bytes, same doorbell
    // count, same notification count, same settle tick.
    EXPECT_EQ(ctx.read(out), lctx.read(lout));
    EXPECT_EQ(rig.plat.fabric().doorbells(),
              legacy.plat.fabric().doorbells());
    EXPECT_EQ(notifies(rig.plat), notifies(legacy.plat));
    EXPECT_EQ(bev.completeTime(), lev.completeTime());
}

TEST(BatchCopies, EightCopiesOneDoorbellOneNotification)
{
    constexpr unsigned kN = 8;
    std::vector<Bytes> payloads;
    for (unsigned i = 0; i < kN; ++i)
        payloads.push_back(payloadFor(i, 1024));

    CopyRig legacy;
    Context lctx = legacy.plat.createContext();
    std::vector<BufferId> louts(kN);
    Tick legacy_mk = 0;
    {
        std::vector<Event> evs;
        for (unsigned i = 0; i < kN; ++i) {
            const BufferId in = lctx.createBuffer(payloads[i]);
            louts[i] = lctx.createBuffer();
            evs.push_back(
                lctx.queue(legacy.a0).enqueueCopy(in, louts[i],
                                                  legacy.a1));
        }
        lctx.finish();
        for (const Event &ev : evs) {
            ASSERT_TRUE(ev.ok());
            legacy_mk = std::max(legacy_mk, ev.completeTime());
        }
    }

    CopyRig rig;
    Context ctx = rig.plat.createContext();
    std::vector<BufferId> outs(kN);
    std::vector<BatchOp> ops;
    for (unsigned i = 0; i < kN; ++i) {
        BatchOp op;
        op.kind = BatchOp::Kind::Copy;
        op.device = rig.a0;
        op.dst_device = rig.a1;
        op.in = ctx.createBuffer(payloads[i]);
        outs[i] = op.out = ctx.createBuffer();
        ops.push_back(op);
    }
    const BatchEvent bev = submitBatch(ctx, ops);
    ctx.finish();
    ASSERT_TRUE(bev.ok());

    // Byte-identical payloads...
    for (unsigned i = 0; i < kN; ++i)
        EXPECT_EQ(ctx.read(outs[i]), lctx.read(louts[i])) << i;

    // ...at one doorbell and one notification instead of one per copy.
    EXPECT_EQ(legacy.plat.fabric().doorbells(), kN);
    EXPECT_EQ(rig.plat.fabric().doorbells(), 1u);
    EXPECT_EQ(notifies(legacy.plat), kN);
    EXPECT_EQ(notifies(rig.plat), 1u);
    EXPECT_EQ(bev.notifications(), 1u);
    EXPECT_EQ(rig.plat.irq().suppressedNotifications(), kN - 1);

    // The saved setups and notifications land in the makespan.
    EXPECT_LT(bev.completeTime(), legacy_mk);
}

TEST(BatchCopies, CoalesceThresholdSplitsTheWindow)
{
    CopyRig rig;
    Context ctx = rig.plat.createContext();
    std::vector<BatchOp> ops;
    for (unsigned i = 0; i < 8; ++i) {
        BatchOp op;
        op.kind = BatchOp::Kind::Copy;
        op.device = rig.a0;
        op.dst_device = rig.a1;
        op.in = ctx.createBuffer(payloadFor(i, 512));
        op.out = ctx.createBuffer();
        ops.push_back(op);
    }
    BatchOptions opts;
    opts.coalesce_threshold = 4;
    const BatchEvent bev = submitBatch(ctx, ops, opts);
    ctx.finish();
    ASSERT_TRUE(bev.ok());
    EXPECT_EQ(bev.notifications(), 2u);
    EXPECT_EQ(rig.plat.irq().suppressedNotifications(), 6u);
}

TEST(BatchCopies, PollModeDeliversWithoutInterrupts)
{
    CopyRig rig;
    Context ctx = rig.plat.createContext();
    std::vector<BufferId> outs(4);
    std::vector<BatchOp> ops;
    for (unsigned i = 0; i < 4; ++i) {
        BatchOp op;
        op.kind = BatchOp::Kind::Copy;
        op.device = rig.a0;
        op.dst_device = rig.a1;
        op.in = ctx.createBuffer(payloadFor(i, 512));
        outs[i] = op.out = ctx.createBuffer();
        ops.push_back(op);
    }
    BatchOptions opts;
    opts.completion = BatchOptions::CompletionMode::Poll;
    const BatchEvent bev = submitBatch(ctx, ops, opts);
    ctx.finish();
    ASSERT_TRUE(bev.ok());
    // Pure completion-record polling: zero interrupts, one poll per
    // member, payload still delivered.
    EXPECT_EQ(rig.plat.irq().interruptsDelivered(), 0u);
    EXPECT_EQ(rig.plat.irq().pollsDelivered(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(ctx.read(outs[i]), payloadFor(i, 512)) << i;
}

TEST(BatchKernels, KernelAndRestructureMembersMatchLegacyBytes)
{
    const restructure::Kernel rk = tileKernel(16);

    const auto run = [&](bool batched) {
        Platform plat;
        fault::FaultPlan benign;
        plat.setFaultPlan(&benign);
        const auto acc =
            plat.addAccelerator("acc", accel::Domain::Crypto, passKernel);
        const auto drx = plat.addDrx("drx0", {});
        Context ctx = plat.createContext();
        const BufferId kin = ctx.createBuffer(payloadFor(0, 1024));
        const BufferId kout = ctx.createBuffer();
        const BufferId rin = ctx.createBuffer(payloadFor(1, rk.input.bytes()));
        const BufferId rout = ctx.createBuffer();
        if (batched) {
            BatchOp k;
            k.kind = BatchOp::Kind::Kernel;
            k.device = acc;
            k.in = kin;
            k.out = kout;
            BatchOp r;
            r.kind = BatchOp::Kind::Restructure;
            r.device = drx;
            r.in = rin;
            r.out = rout;
            r.kernels = {rk};
            const BatchEvent bev = submitBatch(ctx, {k, r});
            ctx.finish();
            EXPECT_TRUE(bev.ok());
            EXPECT_EQ(bev.notifications(), 1u);
        } else {
            const Event ke = ctx.queue(acc).enqueueKernel(kin, kout);
            const Event re =
                ctx.queue(drx).enqueueRestructure(rk, rin, rout);
            ctx.finish();
            EXPECT_TRUE(ke.ok());
            EXPECT_TRUE(re.ok());
        }
        return std::make_pair(ctx.read(kout), ctx.read(rout));
    };

    const auto legacy = run(false);
    const auto batched = run(true);
    EXPECT_EQ(batched.first, legacy.first);
    EXPECT_EQ(batched.second, legacy.second);
}

TEST(BatchChains, ChainMembersShareTheBatchDoorbell)
{
    CopyRig rig;
    Context ctx = rig.plat.createContext();
    std::vector<BufferId> finals(2);
    std::vector<BatchOp> ops;
    for (unsigned c = 0; c < 2; ++c) {
        const BufferId in = ctx.createBuffer(payloadFor(c, 1024));
        const BufferId mid = ctx.createBuffer();
        finals[c] = ctx.createBuffer();
        ChainOp h0;
        h0.kind = ChainOp::Kind::Copy;
        h0.device = rig.a0;
        h0.dst_device = rig.a1;
        h0.in = in;
        h0.out = mid;
        ChainOp h1;
        h1.kind = ChainOp::Kind::Copy;
        h1.device = rig.a1;
        h1.dst_device = rig.a0;
        h1.in = mid;
        h1.out = finals[c];
        BatchOp op;
        op.kind = BatchOp::Kind::Chain;
        op.chain = {h0, h1};
        ops.push_back(op);
    }
    const BatchEvent bev = submitBatch(ctx, ops);
    ctx.finish();
    ASSERT_TRUE(bev.ok());
    // Four copies across two chain members: ONE full doorbell; every
    // other hop is an engine descriptor fetch.
    EXPECT_EQ(rig.plat.fabric().doorbells(), 1u);
    for (unsigned c = 0; c < 2; ++c)
        EXPECT_EQ(ctx.read(finals[c]), payloadFor(c, 1024)) << c;
}

// ------------------------------------- per-member reliability contract

TEST(BatchReliability, OneFailingMemberNeverPoisonsSiblings)
{
    Platform plat;
    fault::FaultPlan plan;
    plan.scriptKernel(1, fault::KernelAction::Fail); // second kernel
    plat.setFaultPlan(&plan);
    CommandPolicy pol = plat.commandPolicy();
    pol.max_retries = 0; // make the scripted failure terminal
    plat.setCommandPolicy(pol);
    const auto acc =
        plat.addAccelerator("acc", accel::Domain::Crypto, passKernel);
    Context ctx = plat.createContext();

    std::vector<BufferId> outs(4);
    std::vector<BatchOp> ops;
    for (unsigned i = 0; i < 4; ++i) {
        BatchOp op;
        op.kind = BatchOp::Kind::Kernel;
        op.device = acc;
        op.in = ctx.createBuffer(payloadFor(i, 256));
        outs[i] = op.out = ctx.createBuffer();
        ops.push_back(op);
    }
    const BatchEvent bev = submitBatch(ctx, ops);
    ctx.finish();

    EXPECT_EQ(bev.status(), Status::Failed);
    unsigned ok = 0, failed = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const BatchRecord &r = bev.records()[i];
        if (r.status == Status::Ok) {
            ++ok;
            EXPECT_EQ(ctx.read(outs[i]), payloadFor(i, 256)) << i;
            EXPECT_TRUE(bev.member(i).ok()) << i;
        } else {
            ++failed;
            EXPECT_EQ(r.status, Status::Failed) << i;
        }
    }
    EXPECT_EQ(failed, 1u);
    EXPECT_EQ(ok, 3u);
}

TEST(BatchReliability, DeadlineTimesOutOnlyTheHungMember)
{
    Platform plat;
    fault::FaultPlan plan;
    plan.scriptKernel(0, fault::KernelAction::Hang); // first kernel
    plat.setFaultPlan(&plan);
    CommandPolicy pol = plat.commandPolicy();
    pol.max_retries = 0;
    pol.deadline = 50 * tick_per_ms; // generous for healthy members
    plat.setCommandPolicy(pol);
    const auto acc =
        plat.addAccelerator("acc", accel::Domain::Crypto, passKernel);
    Context ctx = plat.createContext();

    std::vector<BufferId> outs(3);
    std::vector<BatchOp> ops;
    for (unsigned i = 0; i < 3; ++i) {
        BatchOp op;
        op.kind = BatchOp::Kind::Kernel;
        op.device = acc;
        op.in = ctx.createBuffer(payloadFor(i, 256));
        outs[i] = op.out = ctx.createBuffer();
        ops.push_back(op);
    }
    const BatchEvent bev = submitBatch(ctx, ops);
    ctx.finish();

    EXPECT_EQ(bev.status(), Status::TimedOut);
    EXPECT_EQ(bev.records()[0].status, Status::TimedOut);
    for (unsigned i = 1; i < 3; ++i) {
        EXPECT_EQ(bev.records()[i].status, Status::Ok) << i;
        EXPECT_EQ(ctx.read(outs[i]), payloadFor(i, 256)) << i;
        // Healthy members must not inherit the hung member's stall:
        // they settle long before the deadline budget runs out.
        EXPECT_LT(bev.records()[i].at, pol.deadline) << i;
    }
}

TEST(BatchReliability, AdmissionShedsPerMemberUnderStaticCap)
{
    Platform plat;
    fault::FaultPlan benign;
    plat.setFaultPlan(&benign);
    robust::RobustConfig rc;
    rc.admission.policy = robust::AdmissionPolicy::StaticCap;
    rc.admission.queue_depth_cap = 2;
    plat.setRobustConfig(rc);
    const auto acc =
        plat.addAccelerator("acc", accel::Domain::Crypto, passKernel);
    Context ctx = plat.createContext();

    std::vector<BufferId> outs(6);
    std::vector<BatchOp> ops;
    for (unsigned i = 0; i < 6; ++i) {
        BatchOp op;
        op.kind = BatchOp::Kind::Kernel;
        op.device = acc;
        op.in = ctx.createBuffer(payloadFor(i, 256));
        outs[i] = op.out = ctx.createBuffer();
        ops.push_back(op);
    }
    const BatchEvent bev = submitBatch(ctx, ops);
    ctx.finish();

    // Admission control applies per member, exactly as if each command
    // had been enqueued alone: with 6 concurrent members against a
    // depth cap of 2, some members shed and the rest complete.
    unsigned ok = 0, shed = 0;
    for (unsigned i = 0; i < 6; ++i) {
        const BatchRecord &r = bev.records()[i];
        if (r.status == Status::Ok) {
            ++ok;
            EXPECT_EQ(ctx.read(outs[i]), payloadFor(i, 256)) << i;
        } else if (r.status == Status::Shed) {
            ++shed;
        }
    }
    EXPECT_EQ(ok + shed, 6u);
    EXPECT_GE(ok, 1u);
    EXPECT_GE(shed, 1u);
    EXPECT_EQ(bev.status(), Status::Shed);
}

// -------------------------------------------- randomized differentials

TEST(BatchDifferential, RandomFaultPlansAreDeterministicAndNeverWrong)
{
    unsigned ok_members = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        Rng rng(seed * 9176 + 5);
        fault::FaultSpec fs;
        fs.seed = seed + 1;
        fs.flow_corrupt_prob = rng.uniform(0.0, 0.10);
        fs.kernel_fail_prob = rng.uniform(0.0, 0.10);
        fs.irq_drop_prob = rng.uniform(0.0, 0.05);

        const auto run = [&] {
            Platform plat;
            fault::FaultPlan plan(fs);
            plat.setFaultPlan(&plan);
            const auto a0 = plat.addAccelerator("a0",
                                                accel::Domain::Crypto,
                                                passKernel);
            const auto a1 = plat.addAccelerator("a1",
                                                accel::Domain::Crypto,
                                                passKernel);
            Context ctx = plat.createContext();
            std::vector<BufferId> outs;
            std::vector<BatchOp> ops;
            for (unsigned i = 0; i < 6; ++i) {
                BatchOp op;
                op.kind = i % 2 ? BatchOp::Kind::Kernel
                                : BatchOp::Kind::Copy;
                op.device = a0;
                op.dst_device = a1;
                op.in = ctx.createBuffer(payloadFor(i, 512));
                op.out = ctx.createBuffer();
                outs.push_back(op.out);
                ops.push_back(op);
            }
            const BatchEvent bev = submitBatch(ctx, ops);
            ctx.finish();
            // An Ok member under any fault plan delivered the right
            // bytes: retries replay the command, never corrupt it.
            for (unsigned i = 0; i < 6; ++i)
                if (bev.records()[i].status == Status::Ok) {
                    ++ok_members;
                    EXPECT_EQ(ctx.read(outs[i]), payloadFor(i, 512))
                        << "seed " << seed << " member " << i;
                }
            return digest(ctx, bev, outs);
        };

        const std::string once = run();
        ok_members = 0; // count only the second run
        const std::string twice = run();
        ASSERT_EQ(once, twice) << "seed " << seed;
    }
    EXPECT_GT(ok_members, 0u);
}

TEST(BatchDifferential, RandomIntegrityPlansAreDeterministic)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed * 7741 + 11);
        integrity::IntegritySpec is;
        is.seed = seed + 3;
        is.payload_flip_prob = rng.uniform(0.02, 0.12);

        const auto run = [&] {
            Platform plat;
            fault::FaultPlan benign;
            plat.setFaultPlan(&benign);
            integrity::IntegrityPlan plan(is);
            plat.setIntegrityPlan(&plan);
            const auto a0 = plat.addAccelerator("a0",
                                                accel::Domain::Crypto,
                                                passKernel);
            const auto a1 = plat.addAccelerator("a1",
                                                accel::Domain::Crypto,
                                                passKernel);
            Context ctx = plat.createContext();
            std::vector<BufferId> outs;
            std::vector<BatchOp> ops;
            for (unsigned i = 0; i < 6; ++i) {
                BatchOp op;
                op.kind = BatchOp::Kind::Copy;
                op.device = a0;
                op.dst_device = a1;
                op.in = ctx.createBuffer(payloadFor(i, 512));
                op.out = ctx.createBuffer();
                outs.push_back(op.out);
                ops.push_back(op);
            }
            const BatchEvent bev = submitBatch(ctx, ops);
            ctx.finish();
            return digest(ctx, bev, outs);
        };

        ASSERT_EQ(run(), run()) << "seed " << seed;
    }
}

TEST(BatchDifferential, ResultsAreJobsInvariant)
{
    const auto sweep = [](unsigned jobs) {
        std::vector<std::function<std::string()>> thunks;
        for (std::uint64_t seed = 0; seed < 24; ++seed) {
            thunks.push_back([seed] {
                fault::FaultSpec fs;
                fs.seed = seed + 1;
                fs.kernel_fail_prob = 0.05;
                fs.irq_drop_prob = 0.02;
                Platform plat;
                fault::FaultPlan plan(fs);
                plat.setFaultPlan(&plan);
                const auto a0 = plat.addAccelerator(
                    "a0", accel::Domain::Crypto, passKernel);
                const auto a1 = plat.addAccelerator(
                    "a1", accel::Domain::Crypto, passKernel);
                Context ctx = plat.createContext();
                std::vector<BufferId> outs;
                std::vector<BatchOp> ops;
                for (unsigned i = 0; i < 5; ++i) {
                    BatchOp op;
                    op.kind = i % 2 ? BatchOp::Kind::Kernel
                                    : BatchOp::Kind::Copy;
                    op.device = a0;
                    op.dst_device = a1;
                    op.in = ctx.createBuffer(
                        payloadFor(i, 256 << (seed % 3)));
                    op.out = ctx.createBuffer();
                    outs.push_back(op.out);
                    ops.push_back(op);
                }
                BatchOptions opts;
                opts.coalesce_threshold =
                    static_cast<unsigned>(seed % 4);
                const BatchEvent bev = submitBatch(ctx, ops, opts);
                ctx.finish();
                return digest(ctx, bev, outs);
            });
        }
        exec::ScenarioRunner runner(jobs);
        return runner.run<std::string>(std::move(thunks));
    };

    const auto serial = sweep(1);
    const auto parallel = sweep(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "seed " << i;
}

// ------------------------------------------------- sys closed loop

TEST(SysBatch, BatchedLoopPaysFewerDoorbellsForTheSameWork)
{
    sys::SystemConfig base;
    base.placement = sys::Placement::BumpInTheWire;
    base.n_apps = 4;
    const std::vector<sys::AppModel> apps{motionApp(4096)};

    sys::SystemConfig batched = base;
    batched.batch = 4;

    const sys::RunStats legacy = sys::simulateSystem(base, apps);
    const sys::RunStats fast = sys::simulateSystem(batched, apps);

    // Same logical work, byte for byte...
    EXPECT_EQ(fast.pcie_bytes, legacy.pcie_bytes);
    EXPECT_EQ(fast.kernel_ticks, legacy.kernel_ticks);
    EXPECT_EQ(fast.restructure_ticks, legacy.restructure_ticks);

    // ...at strictly fewer doorbells and notifications. Suppressed
    // completions show up as polls, not driver round trips.
    EXPECT_GT(legacy.doorbells, 0u);
    EXPECT_LT(fast.doorbells, legacy.doorbells);
    EXPECT_LT(fast.driver_round_trips, legacy.driver_round_trips);
    EXPECT_GT(fast.notifications_suppressed, 0u);
    EXPECT_EQ(legacy.notifications_suppressed, 0u);
    EXPECT_GT(fast.polls, legacy.polls);
}

TEST(SysBatch, BatchOneIsInertAndDeterministic)
{
    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::StandaloneDrx;
    cfg.n_apps = 3;
    const std::vector<sys::AppModel> apps{motionApp(2048)};

    const sys::RunStats a = sys::simulateSystem(cfg, apps);
    cfg.batch = 1; // explicit 1 takes the identical legacy path
    const sys::RunStats b = sys::simulateSystem(cfg, apps);
    EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
    EXPECT_EQ(a.interrupts, b.interrupts);
    EXPECT_EQ(a.polls, b.polls);
    EXPECT_EQ(a.doorbells, b.doorbells);
    EXPECT_EQ(a.driver_round_trips, b.driver_round_trips);
    EXPECT_EQ(a.notifications_suppressed, 0u);
    EXPECT_EQ(b.notifications_suppressed, 0u);
}

TEST(SysBatch, ComposesWithDescriptorChains)
{
    sys::SystemConfig chained;
    chained.placement = sys::Placement::BumpInTheWire;
    chained.n_apps = 4;
    chained.chain = sys::ChainSubmission::Descriptor;
    const std::vector<sys::AppModel> apps{motionApp(4096)};

    sys::SystemConfig both = chained;
    both.batch = 4;

    const sys::RunStats c = sys::simulateSystem(chained, apps);
    const sys::RunStats cb = sys::simulateSystem(both, apps);
    EXPECT_EQ(cb.pcie_bytes, c.pcie_bytes);
    EXPECT_LT(cb.doorbells, c.doorbells);
    EXPECT_LE(cb.driver_round_trips, c.driver_round_trips);
    EXPECT_GT(cb.notifications_suppressed, 0u);
}

TEST(SysBatch, ShardedRunsAreJobsInvariantWithBatching)
{
    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::StandaloneDrx;
    cfg.n_apps = 6;
    cfg.batch = 4;
    const std::vector<sys::AppModel> apps{motionApp(4096),
                                          motionApp(1024)};

    const sys::RunStats mono = sys::simulateSystem(cfg, apps);
    const sys::RunStats j1 = sys::simulateSystemSharded(cfg, apps, 1);
    const sys::RunStats j8 = sys::simulateSystemSharded(cfg, apps, 8);

    // Batching is per app instance, so shard domains stay independent:
    // the sharded run matches the monolithic counts and is invariant
    // across worker counts.
    EXPECT_EQ(j1.makespan_ticks, j8.makespan_ticks);
    EXPECT_EQ(j1.doorbells, j8.doorbells);
    EXPECT_EQ(j1.notifications_suppressed, j8.notifications_suppressed);
    EXPECT_EQ(j1.interrupts + j1.polls, j8.interrupts + j8.polls);
    EXPECT_EQ(j1.pcie_bytes, j8.pcie_bytes);

    EXPECT_EQ(j1.doorbells, mono.doorbells);
    EXPECT_EQ(j1.notifications_suppressed,
              mono.notifications_suppressed);
    EXPECT_EQ(j1.pcie_bytes, mono.pcie_bytes);
    EXPECT_EQ(j1.interrupts + j1.polls, mono.interrupts + mono.polls);
}

// ------------------------------------------- overload / serving layers

TEST(BatchServe, OverloadBatchingConservesEveryRequest)
{
    sys::OverloadConfig cfg;
    cfg.requests = 64;
    cfg.devices = 2;
    cfg.load = 2.0;
    cfg.batch = 4;
    const sys::OverloadStats st = sys::simulateOverload(cfg);
    EXPECT_EQ(st.offered,
              st.completed + st.shed + st.failed + st.timed_out);
    EXPECT_GT(st.completed, 0u);
    EXPECT_GT(st.goodput_rps, 0.0);
}

TEST(BatchServe, OverloadBatchingSuppressesNotificationsUnderFaults)
{
    sys::OverloadConfig legacy;
    legacy.requests = 64;
    legacy.devices = 2;
    legacy.load = 1.0;
    legacy.fault_rate = 0.1;
    sys::OverloadConfig batched = legacy;
    batched.batch = 4;

    const sys::OverloadStats l = sys::simulateOverload(legacy);
    const sys::OverloadStats b = sys::simulateOverload(batched);
    EXPECT_EQ(l.irq_suppressed, 0u);
    EXPECT_GT(b.irq_suppressed, 0u);
    EXPECT_GT(l.irq_notifications, b.irq_notifications);
    EXPECT_EQ(b.offered,
              b.completed + b.shed + b.failed + b.timed_out);
}

TEST(BatchServe, ServingDisabledMatchesOverloadWithBatching)
{
    sys::OverloadConfig oc;
    oc.requests = 64;
    oc.devices = 2;
    oc.load = 2.0;
    oc.batch = 4;
    serve::ServeConfig sc;
    sc.overload = oc;

    const sys::OverloadStats legacy = sys::simulateOverload(oc);
    const serve::ServeStats st = serve::simulateServing(sc);
    EXPECT_EQ(st.base.offered, legacy.offered);
    EXPECT_EQ(st.base.completed, legacy.completed);
    EXPECT_EQ(st.base.shed, legacy.shed);
    EXPECT_EQ(st.base.failed, legacy.failed);
    EXPECT_EQ(st.base.timed_out, legacy.timed_out);
    EXPECT_EQ(st.base.goodput_rps, legacy.goodput_rps);
    EXPECT_EQ(st.base.p99_latency_ms, legacy.p99_latency_ms);
    EXPECT_EQ(st.base.makespan_ms, legacy.makespan_ms);
    EXPECT_EQ(st.base.irq_notifications, legacy.irq_notifications);
    EXPECT_EQ(st.base.irq_suppressed, legacy.irq_suppressed);
}
