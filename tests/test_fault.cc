/**
 * @file
 * Tests for the fault-injection and recovery layer: deterministic
 * FaultPlan decisions, per-device health tracking, runtime watchdogs
 * and retries, error cascades, graceful degradation to the CPU, p2p
 * re-routing, and the sys-level closed-loop recovery paths.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "fault/fault.hh"
#include "fault/health.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"
#include "runtime/runtime.hh"
#include "sys/system.hh"
#include "trace/trace.hh"

using namespace dmx;
using namespace dmx::runtime;

namespace
{

/** A kernel that doubles every float. */
Bytes
doubler(const Bytes &in, kernels::OpCount &ops)
{
    Bytes out = in;
    for (std::size_t i = 0; i + 4 <= out.size(); i += 4) {
        float v;
        std::memcpy(&v, &out[i], 4);
        v *= 2.0f;
        std::memcpy(&out[i], &v, 4);
    }
    ops.flops += out.size() / 4;
    ops.bytes_read += in.size();
    ops.bytes_written += out.size();
    return out;
}

/** k1 (accel) -> restructure -> k2 (accel), small enough to run fast. */
sys::AppModel
tinyApp()
{
    sys::AppModel app;
    app.name = "tiny";
    app.input_bytes = 8 * mib;

    sys::KernelTiming k1;
    k1.name = "k1";
    k1.cpu_core_seconds = 0.010;
    k1.accel_cycles = 625'000;
    k1.accel_freq_hz = 250e6;
    k1.out_bytes = 16 * mib;
    app.kernels.push_back(k1);

    sys::KernelTiming k2 = k1;
    k2.name = "k2";
    k2.cpu_core_seconds = 0.008;
    k2.out_bytes = 1 * mib;
    app.kernels.push_back(k2);

    sys::MotionTiming m;
    m.name = "restructure";
    m.cpu_core_seconds = 0.030;
    m.drx_cycles = 1'000'000;
    m.in_bytes = 16 * mib;
    m.out_bytes = 16 * mib;
    app.motions.push_back(m);
    return app;
}

/** Finite-float input bytes for a restructuring kernel. */
restructure::Bytes
kernelInput(const restructure::Kernel &kernel)
{
    std::vector<float> vals(kernel.input.elems());
    for (std::size_t i = 0; i < vals.size(); ++i)
        vals[i] = std::sin(static_cast<float>(i) * 0.13f);
    restructure::Bytes input(kernel.input.bytes());
    std::memcpy(input.data(), vals.data(), input.size());
    return input;
}

} // namespace

// ----------------------------------------------------------- FaultPlan

TEST(FaultPlan, EqualSeedsGiveEqualDecisionStreams)
{
    fault::FaultSpec spec;
    spec.seed = 99;
    spec.flow_corrupt_prob = 0.3;
    spec.kernel_fail_prob = 0.25;
    spec.kernel_hang_prob = 0.1;
    spec.drx_fault_prob = 0.4;
    spec.irq_drop_prob = 0.2;

    fault::FaultPlan a(spec), b(spec);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.onFlow(1, 2, 4096), b.onFlow(1, 2, 4096));
        EXPECT_EQ(a.onKernel(), b.onKernel());
        EXPECT_EQ(a.onMachine(), b.onMachine());
        EXPECT_EQ(a.onIrq(), b.onIrq());
    }
    EXPECT_EQ(a.stats().injected(), b.stats().injected());
    EXPECT_GT(a.stats().injected(), 0u);
}

TEST(FaultPlan, SitesDrawFromIndependentStreams)
{
    // Interleaving queries at other sites must not change a site's
    // decision sequence.
    fault::FaultSpec spec;
    spec.seed = 5;
    spec.kernel_fail_prob = 0.5;

    fault::FaultPlan alone(spec), interleaved(spec);
    std::vector<fault::KernelAction> seq_a, seq_b;
    for (int i = 0; i < 50; ++i)
        seq_a.push_back(alone.onKernel());
    for (int i = 0; i < 50; ++i) {
        interleaved.onFlow(0, 1, 64);
        interleaved.onIrq();
        seq_b.push_back(interleaved.onKernel());
    }
    EXPECT_EQ(seq_a, seq_b);
}

TEST(FaultPlan, ScriptOverridesWithoutShiftingLaterDraws)
{
    fault::FaultSpec spec;
    spec.seed = 11;
    spec.kernel_fail_prob = 0.5;

    fault::FaultPlan plain(spec), scripted(spec);
    scripted.scriptKernel(0, fault::KernelAction::Hang);

    EXPECT_EQ(scripted.onKernel(), fault::KernelAction::Hang);
    // The scripted query still consumed one draw, so the tail of the
    // sequence matches the unscripted plan's.
    plain.onKernel();
    for (int i = 1; i < 50; ++i)
        EXPECT_EQ(plain.onKernel(), scripted.onKernel());
}

TEST(FaultPlan, RejectsInvalidSpecs)
{
    fault::FaultSpec bad_prob;
    bad_prob.kernel_fail_prob = 1.5;
    EXPECT_THROW(fault::FaultPlan{bad_prob}, std::runtime_error);

    fault::FaultSpec bad_sum;
    bad_sum.kernel_fail_prob = 0.7;
    bad_sum.kernel_hang_prob = 0.7;
    EXPECT_THROW(fault::FaultPlan{bad_sum}, std::runtime_error);

    fault::FaultSpec bad_threshold;
    bad_threshold.unhealthy_threshold = 0;
    EXPECT_THROW(fault::FaultPlan{bad_threshold}, std::runtime_error);
}

// ------------------------------------------------------- HealthTracker

TEST(HealthTracker, TripsOnConsecutiveFailuresOnly)
{
    fault::HealthTracker h(3);
    h.recordFailure();
    h.recordFailure();
    EXPECT_TRUE(h.healthy());
    h.recordSuccess(); // resets the streak
    h.recordFailure();
    h.recordFailure();
    EXPECT_TRUE(h.healthy());
    h.recordFailure();
    EXPECT_FALSE(h.healthy());
    // Sticky: an unhealthy device does not organically recover.
    h.recordSuccess();
    EXPECT_FALSE(h.healthy());
    h.reset();
    EXPECT_TRUE(h.healthy());
    EXPECT_EQ(h.totalFailures(), 5u);
}

// ----------------------------------------------------- runtime: events

TEST(FaultRuntime, DefaultEventIsInvalidAndRefusesCompleteTime)
{
    Event ev;
    EXPECT_FALSE(ev.valid());
    EXPECT_FALSE(ev.complete());
    EXPECT_EQ(ev.status(), Status::Pending);
    EXPECT_EQ(ev.retries(), 0u);
    EXPECT_THROW(ev.completeTime(), std::runtime_error);
}

TEST(FaultRuntime, PendingEventRefusesCompleteTime)
{
    Platform plat;
    const DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    Context ctx = plat.createContext();
    const BufferId in = ctx.createBuffer(Bytes(64, 1));
    const BufferId out = ctx.createBuffer();
    Event ev = ctx.queue(dev).enqueueKernel(in, out);
    EXPECT_TRUE(ev.valid());
    EXPECT_THROW(ev.completeTime(), std::runtime_error);
    ctx.finish();
    EXPECT_NO_THROW(ev.completeTime());
    EXPECT_TRUE(ev.ok());
}

// ---------------------------------------------- runtime: fault recovery

TEST(FaultRuntime, StalledFlowTimesOutAndRetrySucceeds)
{
    // Baseline: the same copy on a fault-free platform.
    Tick baseline;
    {
        Platform plat;
        const DeviceId a =
            plat.addAccelerator("a0", accel::Domain::FFT, doubler);
        const DeviceId b =
            plat.addAccelerator("a1", accel::Domain::SVM, doubler);
        Context ctx = plat.createContext();
        const BufferId src = ctx.createBuffer(Bytes(4 * mib, 0x5a));
        const BufferId dst = ctx.createBuffer();
        Event ev = ctx.queue(a).enqueueCopy(src, dst, b);
        ctx.finish();
        baseline = ev.completeTime();
    }

    Platform plat;
    const DeviceId a =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    const DeviceId b =
        plat.addAccelerator("a1", accel::Domain::SVM, doubler);
    fault::FaultPlan plan;
    plan.scriptFlow(0, fault::FlowAction::Stall);
    plat.setFaultPlan(&plan);

    Context ctx = plat.createContext();
    const Bytes payload(4 * mib, 0x5a);
    const BufferId src = ctx.createBuffer(payload);
    const BufferId dst = ctx.createBuffer();
    Event ev = ctx.queue(a).enqueueCopy(src, dst, b);
    ctx.finish();

    EXPECT_TRUE(ev.ok());
    EXPECT_EQ(ev.retries(), 1u);
    EXPECT_EQ(ctx.read(dst), payload);
    EXPECT_EQ(plat.faultStats(a).timeouts, 1u);
    EXPECT_EQ(plat.faultStats(a).retries, 1u);
    // The recovery path pays the watchdog plus backoff: strictly
    // slower than the fault-free copy.
    EXPECT_GT(ev.completeTime(),
              baseline + plat.commandPolicy().timeout);
}

TEST(FaultRuntime, KernelFailureRetriesAndSucceeds)
{
    Platform plat;
    const DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    fault::FaultPlan plan;
    plan.scriptKernel(0, fault::KernelAction::Fail);
    plat.setFaultPlan(&plan);

    Context ctx = plat.createContext();
    const BufferId in = ctx.createBuffer(Bytes(1024, 3));
    const BufferId out = ctx.createBuffer();
    Event ev = ctx.queue(dev).enqueueKernel(in, out);
    ctx.finish();

    EXPECT_TRUE(ev.ok());
    EXPECT_EQ(ev.retries(), 1u);
    EXPECT_EQ(plat.faultStats(dev).failures, 1u);
    EXPECT_EQ(plat.faultStats(dev).timeouts, 0u);
    EXPECT_EQ(ctx.read(out).size(), 1024u);
}

TEST(FaultRuntime, HungKernelCaughtByWatchdog)
{
    Platform plat;
    const DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    fault::FaultPlan plan;
    plan.scriptKernel(0, fault::KernelAction::Hang);
    plat.setFaultPlan(&plan);

    Context ctx = plat.createContext();
    const BufferId in = ctx.createBuffer(Bytes(256, 1));
    const BufferId out = ctx.createBuffer();
    Event ev = ctx.queue(dev).enqueueKernel(in, out);
    ctx.finish();

    EXPECT_TRUE(ev.ok());
    EXPECT_EQ(ev.retries(), 1u);
    EXPECT_EQ(plat.faultStats(dev).timeouts, 1u);
    // The hang is visible on the device model too.
    EXPECT_GT(ev.completeTime(), plat.commandPolicy().timeout);
}

TEST(FaultRuntime, RetryBudgetExhaustionSettlesFailed)
{
    Platform plat;
    const DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    fault::FaultPlan plan;
    for (std::uint64_t n = 0; n < 8; ++n)
        plan.scriptKernel(n, fault::KernelAction::Fail);
    plat.setFaultPlan(&plan);

    Context ctx = plat.createContext();
    const BufferId in = ctx.createBuffer(Bytes(128, 9));
    const BufferId out = ctx.createBuffer();
    Event ev = ctx.queue(dev).enqueueKernel(in, out);
    ctx.finish(); // must terminate despite the permanent failure

    EXPECT_TRUE(ev.complete());
    EXPECT_EQ(ev.status(), Status::Failed);
    EXPECT_FALSE(ev.ok());
    EXPECT_EQ(ev.retries(), plat.commandPolicy().max_retries);
    EXPECT_EQ(plat.faultStats(dev).commands_failed, 1u);
    // The output was never produced.
    EXPECT_TRUE(ctx.read(out).empty());
}

TEST(FaultRuntime, FreshCommandOnFailedDeviceFastFails)
{
    Platform plat;
    const DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    fault::FaultPlan plan;
    for (std::uint64_t n = 0; n < 8; ++n)
        plan.scriptKernel(n, fault::KernelAction::Fail);
    plat.setFaultPlan(&plan);

    // Burn the retry budget once so the device trips its unhealthy
    // threshold and stays down.
    Context c1 = plat.createContext();
    const BufferId in1 = c1.createBuffer(Bytes(128, 9));
    const BufferId out1 = c1.createBuffer();
    Event e1 = c1.queue(dev).enqueueKernel(in1, out1);
    c1.finish();
    ASSERT_EQ(e1.status(), Status::Failed);
    ASSERT_FALSE(plat.deviceHealthy(dev));
    const Tick down_at = plat.now();
    const auto timeouts_before = plat.faultStats(dev).timeouts;
    const auto attempts_before = plat.faultStats(dev).attempts;

    // A fresh command against the dead device must settle Failed
    // immediately - at its own enqueue tick - instead of consuming a
    // full watchdog timeout (the pre-fix behaviour) against hardware
    // already known to be down.
    Context c2 = plat.createContext();
    const BufferId in2 = c2.createBuffer(Bytes(128, 5));
    const BufferId out2 = c2.createBuffer();
    Event e2 = c2.queue(dev).enqueueKernel(in2, out2);
    c2.finish();

    EXPECT_EQ(e2.status(), Status::Failed);
    EXPECT_EQ(e2.completeTime(), down_at);
    EXPECT_EQ(e2.retries(), 0u);
    EXPECT_EQ(plat.faultStats(dev).fast_fails, 1u);
    // No device attempt and no watchdog were spent on it.
    EXPECT_EQ(plat.faultStats(dev).attempts, attempts_before);
    EXPECT_EQ(plat.faultStats(dev).timeouts, timeouts_before);
}

TEST(FaultRuntime, ErrorCascadesDownInOrderQueue)
{
    Platform plat;
    const DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    fault::FaultPlan plan;
    for (std::uint64_t n = 0; n < 8; ++n)
        plan.scriptKernel(n, fault::KernelAction::Fail);
    plat.setFaultPlan(&plan);

    Context ctx = plat.createContext();
    const BufferId in = ctx.createBuffer(Bytes(128, 9));
    const BufferId mid = ctx.createBuffer();
    const BufferId out = ctx.createBuffer();
    Event e1 = ctx.queue(dev).enqueueKernel(in, mid);
    Event e2 = ctx.queue(dev).enqueueKernel(mid, out);
    ctx.finish();

    EXPECT_EQ(e1.status(), Status::Failed);
    EXPECT_EQ(e2.status(), Status::Failed);
    // The cascaded command consumed no device attempts.
    EXPECT_EQ(plat.faultStats(dev).cascaded, 1u);
    EXPECT_EQ(plat.faultStats(dev).attempts,
              1u + plat.commandPolicy().max_retries);
}

TEST(FaultRuntime, UnhealthyDrxDegradesToCpuByteIdentical)
{
    const auto kernel = restructure::melSpectrogram(8, 64, 16);
    const restructure::Bytes input = kernelInput(kernel);

    // Baseline: fault-free DRX execution time.
    Tick baseline;
    {
        Platform plat;
        const DeviceId drx = plat.addDrx("drx0", {});
        Context ctx = plat.createContext();
        const BufferId in = ctx.createBuffer(input);
        const BufferId out = ctx.createBuffer();
        Event ev = ctx.queue(drx).enqueueRestructure(kernel, in, out);
        ctx.finish();
        baseline = ev.completeTime();
    }

    Platform plat;
    const DeviceId drx = plat.addDrx("drx0", {});
    fault::FaultPlan plan;
    // Fault the first three attempts: the health streak reaches the
    // threshold (3) and the final retry degrades to the host CPU.
    for (std::uint64_t n = 0; n < 3; ++n)
        plan.scriptMachine(n, fault::MachineAction::Fault);
    plat.setFaultPlan(&plan);

    Context ctx = plat.createContext();
    const BufferId in = ctx.createBuffer(input);
    const BufferId out = ctx.createBuffer();
    Event ev = ctx.queue(drx).enqueueRestructure(kernel, in, out);
    ctx.finish();

    EXPECT_TRUE(ev.ok());
    EXPECT_TRUE(ev.degraded());
    EXPECT_EQ(ev.retries(), 3u);
    EXPECT_FALSE(plat.deviceHealthy(drx));
    EXPECT_EQ(plat.faultStats(drx).fallbacks, 1u);
    // Byte-identical to the CPU oracle...
    EXPECT_EQ(ctx.read(out), restructure::executeOnCpu(kernel, input));
    // ...at an honestly worse simulated cost.
    EXPECT_GT(ev.completeTime(), baseline);
    EXPECT_GT(plat.hostPool().completedJobs(), 0u);

    // Subsequent restructures skip the dead device entirely.
    const BufferId out2 = ctx.createBuffer();
    Event ev2 = ctx.queue(drx).enqueueRestructure(kernel, in, out2);
    ctx.finish();
    EXPECT_TRUE(ev2.ok());
    EXPECT_TRUE(ev2.degraded());
    EXPECT_EQ(ev2.retries(), 0u);
    EXPECT_EQ(plat.faultStats(drx).fallbacks, 2u);
    EXPECT_EQ(ctx.read(out2), restructure::executeOnCpu(kernel, input));
}

TEST(FaultRuntime, FaultedSwitchReroutesP2pThroughRootComplex)
{
    const Bytes payload(8 * mib, 0xc3);

    Tick p2p_time;
    {
        Platform plat;
        const DeviceId a =
            plat.addAccelerator("a0", accel::Domain::FFT, doubler);
        const DeviceId b =
            plat.addAccelerator("a1", accel::Domain::SVM, doubler);
        Context ctx = plat.createContext();
        const BufferId src = ctx.createBuffer(payload);
        const BufferId dst = ctx.createBuffer();
        Event ev = ctx.queue(a).enqueueCopy(src, dst, b);
        ctx.finish();
        p2p_time = ev.completeTime();
    }

    Platform plat;
    const DeviceId a =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    const DeviceId b =
        plat.addAccelerator("a1", accel::Domain::SVM, doubler);
    fault::FaultSpec spec;
    spec.p2p_switch_faulted = true;
    fault::FaultPlan plan(spec);
    plat.setFaultPlan(&plan);

    Context ctx = plat.createContext();
    const BufferId src = ctx.createBuffer(payload);
    const BufferId dst = ctx.createBuffer();
    Event ev = ctx.queue(a).enqueueCopy(src, dst, b);
    ctx.finish();

    EXPECT_TRUE(ev.ok());
    EXPECT_EQ(ctx.read(dst), payload);
    EXPECT_EQ(plat.faultStats(a).rerouted_copies, 1u);
    // Two serial hops over the constrained x8 uplink beat one p2p hop
    // by a wide margin.
    EXPECT_GT(ev.completeTime(), p2p_time);
}

TEST(FaultRuntime, DroppedCompletionIrqRecoveredByPoll)
{
    auto run = [](fault::FaultPlan &plan) {
        Platform plat;
        const DeviceId dev =
            plat.addAccelerator("a0", accel::Domain::FFT, doubler);
        plat.setFaultPlan(&plan);
        Context ctx = plat.createContext();
        const BufferId in = ctx.createBuffer(Bytes(512, 2));
        const BufferId out = ctx.createBuffer();
        Event ev = ctx.queue(dev).enqueueKernel(in, out);
        ctx.finish();
        return std::make_tuple(ev.completeTime(), ev.ok(),
                               plat.droppedInterrupts());
    };

    fault::FaultPlan clean;
    const auto [t_clean, ok_clean, drops_clean] = run(clean);
    fault::FaultPlan dropping;
    dropping.scriptIrq(0, fault::IrqAction::Drop);
    const auto [t_drop, ok_drop, drops] = run(dropping);

    EXPECT_TRUE(ok_clean);
    EXPECT_TRUE(ok_drop);
    EXPECT_EQ(drops_clean, 0u);
    EXPECT_EQ(drops, 1u);
    // The lost notification costs the driver's recovery-poll latency,
    // not a full command timeout.
    EXPECT_GT(t_drop, t_clean);
    EXPECT_LT(t_drop, t_clean + 2 * driver::InterruptParams{}.lost_irq_recovery);
}

TEST(FaultRuntime, FaultFreePlatformSeesNoReliabilityMachinery)
{
    Platform plat;
    const DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    Context ctx = plat.createContext();
    const BufferId in = ctx.createBuffer(Bytes(256, 7));
    const BufferId out = ctx.createBuffer();
    Event ev = ctx.queue(dev).enqueueKernel(in, out);
    ctx.finish();

    EXPECT_TRUE(ev.ok());
    EXPECT_EQ(ev.retries(), 0u);
    EXPECT_FALSE(ev.degraded());
    EXPECT_EQ(plat.faultStats(dev).failures, 0u);
    EXPECT_EQ(plat.droppedInterrupts(), 0u);
    EXPECT_EQ(plat.commandPolicy().timeout, 0u); // no watchdogs armed
}

// -------------------------------------------------- fault trace events

TEST(FaultTrace, DegradationToCpuSurfacesAsCounterAndSpan)
{
    const auto kernel = restructure::melSpectrogram(8, 64, 16);
    const restructure::Bytes input = kernelInput(kernel);

    trace::TraceBuffer tb;
    trace::TraceSession session(tb);

    Platform plat;
    const DeviceId drx = plat.addDrx("drx0", {});
    fault::FaultPlan plan;
    for (std::uint64_t n = 0; n < 3; ++n)
        plan.scriptMachine(n, fault::MachineAction::Fault);
    plat.setFaultPlan(&plan);

    Context ctx = plat.createContext();
    const BufferId in = ctx.createBuffer(input);
    const BufferId out = ctx.createBuffer();
    Event ev = ctx.queue(drx).enqueueRestructure(kernel, in, out);
    ctx.finish();
    ASSERT_TRUE(ev.ok());
    ASSERT_TRUE(ev.degraded());

    // The degradation is a trace counter...
    EXPECT_DOUBLE_EQ(tb.counterTotal("runtime.degraded"), 1.0);
    // ...and the CPU fallback work is a Degrade-category span with
    // real duration on the device's track.
    std::uint64_t degrade_spans = 0;
    for (const trace::Span &s : tb.spans()) {
        if (s.cat != trace::Category::Degrade)
            continue;
        ++degrade_spans;
        EXPECT_EQ(tb.stringAt(s.name), "cpu_fallback");
        EXPECT_EQ(tb.stringAt(s.track), "drx0");
        EXPECT_GT(s.duration(), 0u);
    }
    EXPECT_EQ(degrade_spans, 1u);
    // The three faulted attempts left retry evidence too.
    EXPECT_DOUBLE_EQ(tb.counterTotal("runtime.retries"), 3.0);
}

TEST(FaultTrace, P2pRerouteSurfacesAsCounter)
{
    trace::TraceBuffer tb;
    trace::TraceSession session(tb);

    Platform plat;
    const DeviceId a =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    const DeviceId b =
        plat.addAccelerator("a1", accel::Domain::SVM, doubler);
    fault::FaultSpec spec;
    spec.p2p_switch_faulted = true;
    fault::FaultPlan plan(spec);
    plat.setFaultPlan(&plan);

    Context ctx = plat.createContext();
    const Bytes payload(4 * mib, 0xc3);
    const BufferId src = ctx.createBuffer(payload);
    const BufferId dst = ctx.createBuffer();
    Event ev = ctx.queue(a).enqueueCopy(src, dst, b);
    ctx.finish();
    ASSERT_TRUE(ev.ok());

    EXPECT_DOUBLE_EQ(tb.counterTotal("runtime.rerouted_copies"), 1.0);
    // Nothing degraded and nothing retried on this path.
    EXPECT_DOUBLE_EQ(tb.counterTotal("runtime.degraded"), 0.0);
    EXPECT_DOUBLE_EQ(tb.counterTotal("runtime.retries"), 0.0);
}

// --------------------------------------------------------- determinism

TEST(FaultRuntime, SameSeedSameTrace)
{
    // A mixed pipeline under probabilistic faults: two runs with equal
    // seeds must produce identical statuses, retry counts and times.
    auto run = [](std::uint64_t seed) {
        fault::FaultSpec spec;
        spec.seed = seed;
        spec.kernel_fail_prob = 0.25;
        spec.flow_corrupt_prob = 0.25;
        spec.drx_fault_prob = 0.2;
        spec.irq_drop_prob = 0.2;
        fault::FaultPlan plan(spec);

        Platform plat;
        const DeviceId acc =
            plat.addAccelerator("a0", accel::Domain::FFT, doubler);
        const DeviceId drx = plat.addDrx("drx0", {});
        plat.setFaultPlan(&plan);

        Context ctx = plat.createContext();
        const auto kernel = restructure::melSpectrogram(8, 64, 16);
        const restructure::Bytes input = kernelInput(kernel);

        std::vector<std::tuple<int, unsigned, Tick>> trace;
        for (int round = 0; round < 6; ++round) {
            const BufferId a = ctx.createBuffer(Bytes(64 * 1024, 1));
            const BufferId b = ctx.createBuffer();
            const BufferId c = ctx.createBuffer();
            const BufferId r_in = ctx.createBuffer(input);
            const BufferId r_out = ctx.createBuffer();
            Event e1 = ctx.queue(acc).enqueueKernel(a, b);
            Event e2 = ctx.queue(acc).enqueueCopy(b, c, drx);
            Event e3 =
                ctx.queue(drx).enqueueRestructure(kernel, r_in, r_out);
            ctx.finish();
            for (const Event &e : {e1, e2, e3})
                trace.emplace_back(static_cast<int>(e.status()),
                                   e.retries(),
                                   e.complete() ? e.completeTime() : 0);
        }
        trace.emplace_back(-1, plan.stats().injected() > 0 ? 1u : 0u,
                           plat.now());
        return trace;
    };

    const auto t1 = run(1234);
    const auto t2 = run(1234);
    EXPECT_EQ(t1, t2);
}

// ------------------------------------------------------------ sys level

TEST(FaultSys, ClosedLoopRecoversFromFlowAndIrqFaults)
{
    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::BumpInTheWire;
    cfg.n_apps = 2;
    cfg.requests_per_app = 3;
    const std::vector<sys::AppModel> apps = {tinyApp()};

    const sys::RunStats clean = sys::simulateSystem(cfg, apps);

    fault::FaultSpec spec;
    spec.seed = 21;
    spec.flow_corrupt_prob = 0.2;
    spec.irq_drop_prob = 0.2;
    fault::FaultPlan plan(spec);
    cfg.fault_plan = &plan;
    const sys::RunStats faulty = sys::simulateSystem(cfg, apps);

    EXPECT_GT(plan.stats().injected(), 0u);
    // Every corrupted flow is retransmitted exactly once per
    // corruption, and every dropped irq is recovered by the poll.
    EXPECT_EQ(faulty.flow_retries, plan.stats().flows_corrupted +
                                       plan.stats().flows_stalled);
    EXPECT_EQ(faulty.dropped_irqs, plan.stats().irqs_dropped);
    EXPECT_EQ(clean.flow_retries, 0u);
    // Recovery costs simulated time: the faulty run cannot be faster.
    EXPECT_GE(faulty.makespan_ms, clean.makespan_ms);
}
