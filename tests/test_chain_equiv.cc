/**
 * @file
 * Differential chain-equivalence harness for descriptor-chained DMA
 * submission and the DRX fusion pass (DESIGN.md 7g).
 *
 * The property under test: for ANY well-formed chain, the descriptor-
 * chained submission (integrity::ChainMode::Descriptor) and the fused
 * variant (cfg.fuse) deliver bytes identical to the legacy per-hop
 * loop, with stats consistent with it - fewer driver round trips,
 * never more simulated time - and this holds at every --jobs level,
 * under randomized fault plans, and under randomized corruption plans
 * with end-to-end protection on. Fusion-legality rejections (gather
 * stages, shape-mismatched streams, mid-chain placement changes,
 * DRAM footprint) are pinned alongside, plus the descriptor-fetch
 * golden ticks at the fabric layer and fused-plan memoization in the
 * compiled-kernel cache.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "driver/interrupts.hh"
#include "drx/cache.hh"
#include "drx/compiler.hh"
#include "drx/fusion.hh"
#include "exec/scenario.hh"
#include "fault/fault.hh"
#include "integrity/chain.hh"
#include "integrity/checksum.hh"
#include "integrity/integrity.hh"
#include "pcie/fabric.hh"
#include "restructure/catalog.hh"
#include "runtime/chain.hh"
#include "runtime/runtime.hh"
#include "sim/eventq.hh"
#include "util_random_chain.hh"

using namespace dmx;
using namespace dmx::integrity;
using dmx::testutil::randomRuntimeChain;
using dmx::testutil::RuntimeChainSpec;

namespace
{

/**
 * Run the seed's random chain on a fresh platform under @p cfg. A
 * zero-probability fault plan is installed so completion interrupts
 * are modeled: the per-command driver round trips the descriptor
 * chain eliminates then show up in the makespan.
 */
ChainReport
runSeedChain(std::uint64_t seed, const ChainConfig &cfg,
             bool allow_gather = true)
{
    runtime::Platform plat;
    fault::FaultPlan benign;
    plat.setFaultPlan(&benign);
    const RuntimeChainSpec spec =
        randomRuntimeChain(plat, seed, allow_gather);
    return runChain(plat, spec.stages, spec.input, cfg);
}

/** Stable digest of a report for differential comparison. */
std::string
digest(const ChainReport &r)
{
    std::ostringstream os;
    os << static_cast<int>(r.status) << ':' << r.ok << ':'
       << r.makespan << ':' << crc32(r.output) << ':' << r.output.size()
       << ':' << r.stages_run << ':' << r.hops_run << ':'
       << r.mismatches_detected << ':' << r.hop_retransmits << ':'
       << r.rollbacks << ':' << r.failovers << ':' << r.round_trips
       << ':' << r.descriptor_chains << ':' << r.fused_stages;
    return os.str();
}

/** Two-stage DRX kernels chained shape-compatibly for fusion tests. */
restructure::Kernel
affineKernel(const char *name, const restructure::BufferDesc &in,
             float scale)
{
    restructure::Kernel k;
    k.name = name;
    k.input = in;
    k.stages.push_back(
        restructure::mapStage({{restructure::MapFn::Scale, scale}}));
    return k;
}

} // namespace

// ------------------------------------------------- differential harness

TEST(ChainEquiv, FaultFreeDifferentialOver200RandomChains)
{
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        ChainConfig legacy_cfg;

        ChainConfig chained_cfg;
        chained_cfg.mode = ChainMode::Descriptor;
        // Vary the checkpoint segmentation: whole-chain, 2-stage and
        // 3-stage descriptor chains. (1-stage segments are legal but
        // degenerate - on a hop-free chain they pay exactly the legacy
        // per-command cost, so they would void the strict-win
        // assertions below; the randomized fault/integrity sweeps
        // cover them instead.)
        const unsigned seg_rotation[3] = {0, 2, 3};
        chained_cfg.segment_stages = seg_rotation[seed % 3];

        ChainConfig fused_cfg = chained_cfg;
        fused_cfg.fuse = true;

        const ChainReport legacy = runSeedChain(seed, legacy_cfg);
        const ChainReport chained = runSeedChain(seed, chained_cfg);
        const ChainReport fused = runSeedChain(seed, fused_cfg);

        ASSERT_TRUE(legacy.ok) << "seed " << seed;
        ASSERT_TRUE(chained.ok) << "seed " << seed;
        ASSERT_TRUE(fused.ok) << "seed " << seed;

        // Byte-identical outputs across all three submission modes.
        ASSERT_EQ(chained.output, legacy.output) << "seed " << seed;
        ASSERT_EQ(fused.output, legacy.output) << "seed " << seed;

        // Stats consistent with legacy: same logical work fault-free...
        EXPECT_EQ(chained.stages_run, legacy.stages_run)
            << "seed " << seed;
        EXPECT_EQ(chained.hops_run, legacy.hops_run) << "seed " << seed;
        EXPECT_EQ(fused.stages_run, legacy.stages_run)
            << "seed " << seed;

        // ...but strictly fewer driver round trips (one per segment
        // instead of one per command).
        EXPECT_LT(chained.round_trips, legacy.round_trips)
            << "seed " << seed;
        EXPECT_LE(fused.round_trips, chained.round_trips)
            << "seed " << seed;
        // Makespan: a whole-chain submission strictly wins - one
        // notification amortized over every command, descriptor
        // fetches instead of per-hop DMA setups. Short segments trade
        // differently under the NAPI notification model: legacy's
        // dense completion stream keeps the driver in polled mode
        // (500 ns per completion) while per-segment completions arrive
        // too rarely to poll, so each pays the full interrupt latency.
        // A 2-stage segment replaces only ~2-3 polled completions with
        // one 3 us interrupt and can lose that trade; bound the loss
        // by one interrupt per descriptor chain.
        const Tick irq_lat = driver::InterruptParams{}.interrupt_latency;
        if (chained_cfg.segment_stages == 0) {
            EXPECT_LT(chained.makespan, legacy.makespan)
                << "seed " << seed;
        } else {
            EXPECT_LT(chained.makespan,
                      legacy.makespan +
                          chained.descriptor_chains * irq_lat)
                << "seed " << seed;
        }
        EXPECT_LE(fused.makespan, chained.makespan) << "seed " << seed;
        EXPECT_GE(chained.descriptor_chains, 1u) << "seed " << seed;
        EXPECT_EQ(legacy.descriptor_chains, 0u) << "seed " << seed;
    }
}

TEST(ChainEquiv, ResultsAreJobsInvariant)
{
    // The same differential sweep fanned across worker threads must
    // produce byte-identical digests at --jobs 1 and 8.
    const auto sweep = [](unsigned jobs) {
        std::vector<std::function<std::string()>> thunks;
        for (std::uint64_t seed = 0; seed < 48; ++seed) {
            thunks.push_back([seed] {
                ChainConfig chained;
                chained.mode = ChainMode::Descriptor;
                chained.segment_stages =
                    static_cast<unsigned>(seed % 3);
                ChainConfig fused = chained;
                fused.fuse = true;
                return digest(runSeedChain(seed, chained)) + "|" +
                       digest(runSeedChain(seed, fused)) + "|" +
                       digest(runSeedChain(seed, ChainConfig{}));
            });
        }
        exec::ScenarioRunner runner(jobs);
        return runner.run<std::string>(std::move(thunks));
    };

    const auto serial = sweep(1);
    const auto parallel = sweep(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "seed " << i;
}

TEST(ChainEquiv, RandomFaultPlansAreDeterministicAndNeverWrong)
{
    // Under randomized fault plans the recovery paths of the two modes
    // legitimately diverge; what must hold is that each mode is
    // deterministic (identical rerun digests on fresh platforms) and
    // that a chain reporting success delivered the fault-free bytes.
    unsigned completed = 0;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const ChainReport reference = runSeedChain(seed, ChainConfig{});
        ASSERT_TRUE(reference.ok) << "seed " << seed;

        Rng rng(seed * 31337 + 7);
        fault::FaultSpec fs;
        fs.seed = seed + 1;
        fs.flow_corrupt_prob = rng.uniform(0.0, 0.10);
        fs.kernel_fail_prob = rng.uniform(0.0, 0.10);
        fs.drx_fault_prob = rng.uniform(0.0, 0.08);
        fs.irq_drop_prob = rng.uniform(0.0, 0.05);

        const auto faulted = [&](bool fuse) {
            runtime::Platform plat;
            fault::FaultPlan plan(fs);
            plat.setFaultPlan(&plan);
            const RuntimeChainSpec spec = randomRuntimeChain(plat, seed);
            ChainConfig cfg;
            cfg.mode = ChainMode::Descriptor;
            cfg.fuse = fuse;
            cfg.checkpoints = true;
            cfg.segment_stages = static_cast<unsigned>(seed % 3);
            cfg.max_recoveries = 64;
            return runChain(plat, spec.stages, spec.input, cfg);
        };

        const ChainReport once = faulted(seed % 2 == 0);
        const ChainReport twice = faulted(seed % 2 == 0);
        ASSERT_EQ(digest(once), digest(twice)) << "seed " << seed;
        EXPECT_LE(once.recoveries(), 64u) << "seed " << seed;
        if (once.ok) {
            ++completed;
            EXPECT_EQ(once.output, reference.output) << "seed " << seed;
        }
    }
    // The fault rates are mild; most chains must still complete.
    EXPECT_GE(completed, 30u);
}

TEST(ChainEquiv, RandomCorruptionPlansNeverEscapeUnderProtection)
{
    unsigned completed = 0;
    unsigned total_mismatches = 0;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const ChainReport reference = runSeedChain(seed, ChainConfig{});
        ASSERT_TRUE(reference.ok) << "seed " << seed;

        runtime::Platform plat;
        Rng rng(seed * 7741 + 3);
        IntegritySpec is;
        is.seed = seed + 11;
        is.payload_flip_prob = rng.uniform(0.02, 0.12);
        IntegrityPlan plan(is);
        plat.setIntegrityPlan(&plan);

        const RuntimeChainSpec spec = randomRuntimeChain(plat, seed);
        ChainConfig cfg;
        cfg.mode = ChainMode::Descriptor;
        cfg.fuse = seed % 2 == 0;
        cfg.protection = ProtectionMode::E2eChecksum;
        cfg.policy = seed % 2 ? MismatchPolicy::RollbackReplay
                              : MismatchPolicy::HopRetransmit;
        cfg.checkpoints = true;
        cfg.segment_stages = static_cast<unsigned>(seed % 3);
        cfg.max_recoveries = 512;

        const ChainReport rep =
            runChain(plat, spec.stages, spec.input, cfg);
        EXPECT_LE(rep.recoveries(), 512u) << "seed " << seed;
        total_mismatches += rep.mismatches_detected;
        if (rep.ok) {
            ++completed;
            // The integrity contract at descriptor granularity: a
            // successful protected chain never delivers corrupt bytes.
            ASSERT_EQ(rep.output, reference.output) << "seed " << seed;
        }
    }
    EXPECT_GE(completed, 30u);
    // The sweep must actually have exercised detection.
    EXPECT_GT(total_mismatches, 0u);
}

// ------------------------------------------------ fusion legality pins

TEST(FusionLegality, GatherStageIsRejectedButStillRuns)
{
    const restructure::BufferDesc in{DType::F32, {8, 16}};
    const restructure::Kernel affine = affineKernel("aff", in, 1.5f);
    restructure::Kernel gather;
    gather.name = "perm";
    gather.input = in;
    {
        auto idx =
            std::make_shared<std::vector<std::uint32_t>>(in.elems());
        for (std::size_t i = 0; i < idx->size(); ++i)
            (*idx)[i] =
                static_cast<std::uint32_t>(idx->size() - 1 - i);
        gather.stages.push_back(
            restructure::gatherStage(std::move(idx), in.shape));
    }

    const drx::DrxConfig cfg;
    const auto pa = drx::planKernel(affine, cfg);
    const auto pg = drx::planKernel(gather, cfg);
    EXPECT_FALSE(drx::canFusePlans(pa, pg, cfg).ok);
    EXPECT_NE(drx::canFusePlans(pa, pg, cfg).reason.find("gather"),
              std::string::npos);
    EXPECT_FALSE(drx::canFusePlans(pg, pa, cfg).ok);

    // End to end: the fused run silently falls back to back-to-back
    // parts and still delivers legacy-identical bytes.
    const auto run = [&](ChainConfig ccfg) {
        runtime::Platform plat;
        const auto d = plat.addDrx("drx0", {});
        std::vector<ChainStage> stages(2);
        stages[0].device = d;
        stages[0].kernel = affine;
        stages[1].device = d;
        stages[1].kernel = gather;
        runtime::Bytes input(in.bytes());
        for (std::size_t i = 0; i < input.size(); ++i)
            input[i] = static_cast<std::uint8_t>(i % 64);
        return runChain(plat, stages, input, ccfg);
    };
    ChainConfig fused;
    fused.mode = ChainMode::Descriptor;
    fused.fuse = true;
    const ChainReport legacy = run(ChainConfig{});
    const ChainReport attempt = run(fused);
    ASSERT_TRUE(legacy.ok);
    ASSERT_TRUE(attempt.ok);
    EXPECT_EQ(attempt.output, legacy.output);
    EXPECT_EQ(attempt.fused_stages, 0u);
}

TEST(FusionLegality, ShapeMismatchedStreamsAreRejected)
{
    const drx::DrxConfig cfg;
    const restructure::Kernel a =
        affineKernel("a", {DType::F32, {8, 16}}, 2.0f);
    const restructure::Kernel b =
        affineKernel("b", {DType::F32, {8, 24}}, 0.5f);
    const auto fp = drx::planFusedChain({a, b}, cfg);
    EXPECT_FALSE(fp.verdict.ok);
    EXPECT_EQ(fp.compiled, nullptr);
    EXPECT_NE(fp.verdict.reason.find("mismatch"), std::string::npos);

    // Dtype mismatch at equal byte count is rejected too.
    restructure::Kernel c = affineKernel("c", {DType::F32, {8, 16}}, 1.0f);
    c.input.dtype = DType::I32;
    EXPECT_FALSE(
        drx::canFusePlans(drx::planKernel(a, cfg),
                          drx::planKernel(c, cfg), cfg).ok);
}

TEST(FusionLegality, MidChainPlacementChangeBlocksFusion)
{
    const restructure::BufferDesc in{DType::F32, {8, 16}};
    const restructure::Kernel k1 = affineKernel("k1", in, 1.25f);
    const restructure::Kernel k2 = affineKernel("k2", in, 0.75f);
    runtime::Bytes input(in.bytes());
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<std::uint8_t>(i * 5 + 1);

    const auto run = [&](bool same_device) {
        runtime::Platform plat;
        const auto d0 = plat.addDrx("drx0", {});
        const auto d1 = plat.addDrx("drx1", {});
        std::vector<ChainStage> stages(2);
        stages[0].device = d0;
        stages[0].kernel = k1;
        stages[1].device = same_device ? d0 : d1;
        stages[1].kernel = k2;
        ChainConfig cfg;
        cfg.mode = ChainMode::Descriptor;
        cfg.fuse = true;
        return runChain(plat, stages, input, cfg);
    };

    // Positive control: same device fuses the pair into one plan.
    const ChainReport same = run(true);
    ASSERT_TRUE(same.ok);
    EXPECT_EQ(same.fused_stages, 1u);

    // A placement change between the stages forces a hop; the stages
    // land in different Restructure descriptors and must not fuse.
    const ChainReport split = run(false);
    ASSERT_TRUE(split.ok);
    EXPECT_EQ(split.fused_stages, 0u);
    EXPECT_EQ(split.hops_run, 1u);
    EXPECT_EQ(split.output, same.output);
}

TEST(FusionLegality, ProducerConstantsAboveOutputAreRejected)
{
    // The consumer's shifted footprint lands at [output_addr,
    // output_addr + b.dram_bytes): a producer constant placed above
    // its output region would be clobbered at install time, so
    // legality must reject such a plan even when everything else
    // lines up.
    const drx::DrxConfig cfg;
    const restructure::Kernel a =
        affineKernel("a", {DType::F32, {8, 16}}, 2.0f);
    const restructure::Kernel b =
        affineKernel("b", {DType::F32, {8, 16}}, 0.5f);
    drx::CompiledKernel pa = drx::planKernel(a, cfg);
    const drx::CompiledKernel pb = drx::planKernel(b, cfg);
    ASSERT_TRUE(drx::canFusePlans(pa, pb, cfg).ok);

    pa.consts.push_back({pa.output_addr + 64, {0xAB, 0xCD}});
    const auto v = drx::canFusePlans(pa, pb, cfg);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.reason.find("constants above"), std::string::npos);

    // A real-world producer that trips a legality wall: the banded
    // MatVec lowering of the mel filter bank gathers its bands through
    // the hardware Gather, so a mel-spectrogram producer is rejected
    // by the gather rule before its constants are even considered.
    const restructure::Kernel mel = restructure::melSpectrogram(8, 64, 16);
    const auto pm = drx::planKernel(mel, cfg);
    const restructure::Kernel after =
        affineKernel("after", mel.output(), 3.0f);
    const auto pn = drx::planKernel(after, cfg);
    const auto vm = drx::canFusePlans(pm, pn, cfg);
    EXPECT_FALSE(vm.ok);
    EXPECT_NE(vm.reason.find("gather"), std::string::npos);
}

TEST(FusionLegality, FusedFootprintBeyondDramIsRejected)
{
    drx::DrxConfig cfg;
    const restructure::Kernel a =
        affineKernel("a", {DType::F32, {8, 16}}, 2.0f);
    const restructure::Kernel b =
        affineKernel("b", {DType::F32, {8, 16}}, 0.5f);
    const auto pa = drx::planKernel(a, cfg);
    const auto pb = drx::planKernel(b, cfg);
    ASSERT_TRUE(drx::canFusePlans(pa, pb, cfg).ok);

    // Shrink the device DRAM to one byte under the fused footprint:
    // each part still fits alone, the fusion must be rejected.
    const std::uint64_t fused_bytes =
        std::max(pa.dram_bytes, pa.output_addr + pb.dram_bytes);
    cfg.dram_bytes = fused_bytes - 1;
    ASSERT_GE(cfg.dram_bytes, pa.dram_bytes);
    ASSERT_GE(cfg.dram_bytes, pb.dram_bytes);
    const auto v = drx::canFusePlans(pa, pb, cfg);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.reason.find("footprint"), std::string::npos);
}

TEST(FusionLegality, FusedPlansAreMemoizedInTheCache)
{
    drx::DrxCacheConfig cc;
    cc.enabled = true;
    drx::ProgramCache cache(cc);
    const drx::DrxConfig cfg;
    const std::vector<restructure::Kernel> parts{
        affineKernel("a", {DType::F32, {8, 16}}, 2.0f),
        affineKernel("b", {DType::F32, {8, 16}}, 0.5f)};

    const auto first = drx::planFusedChain(parts, cfg, &cache, 0);
    ASSERT_TRUE(first.verdict.ok);
    ASSERT_NE(first.compiled, nullptr);
    EXPECT_FALSE(first.cache_hit);

    const auto second = drx::planFusedChain(parts, cfg, &cache, 1);
    ASSERT_TRUE(second.verdict.ok);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(second.key, first.key);
    // The memo returns the same compiled object: a retry reinstalls
    // instead of recompiling.
    EXPECT_EQ(second.compiled.get(), first.compiled.get());

    // The fused entry is keyed apart from its parts' plain entries.
    const auto plain = cache.lookup(parts[0], cfg, 2);
    EXPECT_NE(plain.key, first.key);
}

// -------------------------------------------- fabric descriptor ticks

TEST(ChainDescriptor, FollowOnDescriptorsPayFetchNotSetup)
{
    // Golden ticks: a first descriptor costs exactly what a plain
    // checked flow costs; every follow-on descriptor is cheaper by
    // dma_setup - desc_fetch_latency.
    const auto flowTicks = [](int kind) {
        sim::EventQueue eq;
        pcie::Fabric fab(eq, "fab");
        const auto rc = fab.addNode(pcie::NodeKind::RootComplex, "rc");
        const auto sw = fab.addNode(pcie::NodeKind::Switch, "sw");
        const auto e0 = fab.addNode(pcie::NodeKind::EndPoint, "e0");
        const auto e1 = fab.addNode(pcie::NodeKind::EndPoint, "e1");
        fab.connect(rc, sw, pcie::Generation::Gen3, 8);
        fab.connect(sw, e0, pcie::Generation::Gen3, 16);
        fab.connect(sw, e1, pcie::Generation::Gen3, 16);
        Tick done = 0;
        const auto cb = [&](bool ok) {
            ASSERT_TRUE(ok);
            done = eq.now();
        };
        if (kind == 0)
            fab.startFlowChecked(e0, e1, 4096, cb);
        else
            fab.startDescriptorFlow({e0, e1, 4096}, kind == 1, cb);
        eq.run();
        return done;
    };

    const Tick checked = flowTicks(0);
    const Tick first = flowTicks(1);
    const Tick follow = flowTicks(2);
    EXPECT_EQ(first, checked);
    const pcie::FabricParams params;
    ASSERT_GT(params.dma_setup, params.desc_fetch_latency);
    EXPECT_EQ(follow + params.dma_setup - params.desc_fetch_latency,
              first);
}

TEST(ChainDescriptor, ChainWalksAutonomouslyAndCountsFetches)
{
    sim::EventQueue eq;
    pcie::Fabric fab(eq, "fab");
    const auto rc = fab.addNode(pcie::NodeKind::RootComplex, "rc");
    const auto sw = fab.addNode(pcie::NodeKind::Switch, "sw");
    const auto e0 = fab.addNode(pcie::NodeKind::EndPoint, "e0");
    const auto e1 = fab.addNode(pcie::NodeKind::EndPoint, "e1");
    fab.connect(rc, sw, pcie::Generation::Gen3, 8);
    fab.connect(sw, e0, pcie::Generation::Gen3, 16);
    fab.connect(sw, e1, pcie::Generation::Gen3, 16);

    // One submission, three linked descriptors: one setup + two
    // fetches, strictly in order, one completion callback.
    int done_calls = 0;
    Tick done_at = 0;
    fab.startDescriptorChain({{e0, e1, 4096},
                              {e1, e0, 4096},
                              {e0, e1, 4096}},
                             [&](bool ok) {
                                 EXPECT_TRUE(ok);
                                 ++done_calls;
                                 done_at = eq.now();
                             });
    eq.run();
    EXPECT_EQ(done_calls, 1);
    EXPECT_GT(done_at, 0u);
    EXPECT_EQ(fab.descriptorChains(), 1u);
    EXPECT_EQ(fab.descriptorFetches(), 2u);

    // An empty chain completes inline without touching the fabric.
    bool empty_ok = false;
    fab.startDescriptorChain({}, [&](bool ok) { empty_ok = ok; });
    EXPECT_TRUE(empty_ok);
    EXPECT_EQ(fab.descriptorChains(), 1u);
}

TEST(ChainDescriptor, PerDescriptorFaultHooksStillConsulted)
{
    // The fault hook must be queried once per descriptor, exactly as
    // for individually submitted flows: script the second flow of the
    // process to corrupt and the chain must fail on descriptor #2.
    sim::EventQueue eq;
    pcie::Fabric fab(eq, "fab");
    const auto rc = fab.addNode(pcie::NodeKind::RootComplex, "rc");
    const auto sw = fab.addNode(pcie::NodeKind::Switch, "sw");
    const auto e0 = fab.addNode(pcie::NodeKind::EndPoint, "e0");
    const auto e1 = fab.addNode(pcie::NodeKind::EndPoint, "e1");
    fab.connect(rc, sw, pcie::Generation::Gen3, 8);
    fab.connect(sw, e0, pcie::Generation::Gen3, 16);
    fab.connect(sw, e1, pcie::Generation::Gen3, 16);

    fault::FaultPlan plan;
    plan.scriptFlow(1, fault::FlowAction::Corrupt);
    fab.setFaultHook([&plan](std::uint32_t src, std::uint32_t dst,
                             std::uint64_t bytes) {
        return plan.onFlow(src, dst, bytes);
    });

    bool called = false;
    bool result = true;
    fab.startDescriptorChain({{e0, e1, 2048}, {e1, e0, 2048}},
                             [&](bool ok) {
                                 called = true;
                                 result = ok;
                             });
    eq.run();
    EXPECT_TRUE(called);
    EXPECT_FALSE(result);
}
