/**
 * @file
 * Unit tests for the DRX: ISA/program validation, machine semantics,
 * timing model properties, and compiler correctness (DRX output must
 * match the CPU reference executor for every catalog kernel).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hh"
#include "drx/compiler.hh"
#include "drx/machine.hh"
#include "drx/program.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"

using namespace dmx;
using namespace dmx::drx;
using restructure::Bytes;
using restructure::Kernel;

namespace
{

Bytes
floatBytes(const std::vector<float> &v)
{
    Bytes b(v.size() * 4);
    std::memcpy(b.data(), v.data(), b.size());
    return b;
}

std::vector<float>
toFloats(const Bytes &b)
{
    std::vector<float> v(b.size() / 4);
    std::memcpy(v.data(), b.data(), b.size());
    return v;
}

Bytes
randomInput(const restructure::BufferDesc &desc, std::uint64_t seed)
{
    Rng rng(seed);
    Bytes out(desc.bytes());
    if (desc.dtype == DType::F32) {
        for (std::size_t i = 0; i < desc.elems(); ++i) {
            const float v = static_cast<float>(rng.uniform(-2.0, 2.0));
            std::memcpy(&out[i * 4], &v, 4);
        }
    } else {
        for (auto &b : out)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return out;
}

} // namespace

// ------------------------------------------------------------ program

TEST(DrxProgram, BuilderProducesValidProgram)
{
    Program p = ProgramBuilder("t")
                    .loop(0, 4)
                    .streamCfg(0, 0, DType::F32, 8, 0, 0, 8)
                    .sync()
                    .load(0, 0)
                    .compute1(VFunc::MulS, 1, 0, 2.0f)
                    .store(0, 1)
                    .build();
    EXPECT_EQ(p.bodySize(), 3u);
    EXPECT_NE(p.disassemble().find("cfg.loop"), std::string::npos);
    EXPECT_NE(p.disassemble().find("v.muls"), std::string::npos);
}

TEST(DrxProgram, ValidationCatchesStructuralErrors)
{
    // Body before sync.
    {
        ProgramBuilder b("bad");
        b.streamCfg(0, 0, DType::F32, 1, 0, 0, 1);
        b.load(0, 0);
        EXPECT_THROW(b.sync().build(), std::runtime_error);
    }
    // Missing sync.
    {
        ProgramBuilder b("bad2");
        b.loop(0, 1);
        EXPECT_THROW(b.build(), std::runtime_error);
    }
    // Tile too large.
    {
        ProgramBuilder b("bad3");
        EXPECT_THROW(b.streamCfg(0, 0, DType::F32, 0, 0, 0,
                                 max_tile_elems + 1)
                         .sync()
                         .build(),
                     std::runtime_error);
    }
    // Bad loop dim.
    {
        ProgramBuilder b("bad4");
        EXPECT_THROW(b.loop(3, 2).sync().build(), std::runtime_error);
    }
}

// ------------------------------------------------------------ machine

TEST(DrxMachine, AllocAndReadWrite)
{
    DrxMachine m;
    const auto a = m.alloc(100);
    const auto b = m.alloc(100);
    EXPECT_GE(b, a + 100);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    const Bytes data{1, 2, 3};
    m.write(a, data.data(), 3);
    EXPECT_EQ(m.read(a, 3), data);
}

TEST(DrxMachine, AllocExhaustionIsFatal)
{
    DrxConfig cfg;
    cfg.dram_bytes = 1024;
    DrxMachine m(cfg);
    m.alloc(512);
    EXPECT_THROW(m.alloc(1024), std::runtime_error);
}

TEST(DrxMachine, ScaleProgramComputesCorrectly)
{
    DrxMachine m;
    const auto in = m.alloc(16 * 4);
    const auto out = m.alloc(16 * 4);
    const auto data = floatBytes(
        {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
    m.write(in, data.data(), data.size());

    Program p = ProgramBuilder("scale2")
                    .loop(0, 4)
                    .streamCfg(0, in, DType::F32, 4, 0, 0, 4)
                    .streamCfg(1, out, DType::F32, 4, 0, 0, 4)
                    .sync()
                    .load(0, 0)
                    .compute1(VFunc::MulS, 1, 0, 2.0f)
                    .store(1, 1)
                    .build();
    const RunResult res = m.run(p);
    const auto v = toFloats(m.read(out, 16 * 4));
    for (int i = 0; i < 16; ++i)
        EXPECT_FLOAT_EQ(v[static_cast<std::size_t>(i)], 2.0f * i);
    EXPECT_EQ(res.bytes_read, 64u);
    EXPECT_EQ(res.bytes_written, 64u);
    EXPECT_GT(res.total_cycles, 0u);
}

TEST(DrxMachine, DepthHoistingExecutesOncePerOuter)
{
    // Two-dim loop; a depth-0 load runs only when the inner index is 0.
    DrxMachine m;
    const auto in = m.alloc(4 * 4);
    const auto out = m.alloc(3 * 4 * 4);
    const auto data = floatBytes({10, 20, 30, 40});
    m.write(in, data.data(), data.size());

    Program p = ProgramBuilder("hoist")
                    .loop(0, 1)
                    .loop(1, 3)
                    .streamCfg(0, in, DType::F32, 0, 0, 0, 4)
                    .streamCfg(1, out, DType::F32, 0, 4, 0, 4)
                    .sync()
                    .load(0, 0)
                    .at(0) // hoisted: loads once
                    .store(1, 0)
                    .build();
    const RunResult res = m.run(p);
    EXPECT_EQ(res.bytes_read, 16u);       // one load, not three
    EXPECT_EQ(res.bytes_written, 48u);    // three stores
    const auto v = toFloats(m.read(out, 48));
    EXPECT_FLOAT_EQ(v[0], 10);
    EXPECT_FLOAT_EQ(v[4], 10);
    EXPECT_FLOAT_EQ(v[11], 40);
}

TEST(DrxMachine, PostPlacementRunsAtEpilogue)
{
    // Accumulate 4 tiles, store once at the last inner iteration.
    DrxMachine m;
    const auto in = m.alloc(16 * 4);
    const auto out = m.alloc(4 * 4);
    std::vector<float> vals(16);
    for (int i = 0; i < 16; ++i)
        vals[static_cast<std::size_t>(i)] = static_cast<float>(i);
    const auto data = floatBytes(vals);
    m.write(in, data.data(), data.size());

    Program p = ProgramBuilder("acc")
                    .loop(0, 1)
                    .loop(1, 4)
                    .streamCfg(0, in, DType::F32, 0, 4, 0, 4)
                    .streamCfg(1, out, DType::F32, 0, 0, 0, 4)
                    .sync()
                    .fill(2, 0.0f, 4)
                    .at(0)
                    .load(0, 0)
                    .compute(VFunc::Add, 2, 2, 0)
                    .store(1, 2)
                    .at(0, true)
                    .build();
    const RunResult res = m.run(p);
    EXPECT_EQ(res.bytes_written, 16u); // a single store
    const auto v = toFloats(m.read(out, 16));
    // Column sums of the 4x4 matrix laid out row-major.
    EXPECT_FLOAT_EQ(v[0], 0 + 4 + 8 + 12);
    EXPECT_FLOAT_EQ(v[3], 3 + 7 + 11 + 15);
}

TEST(DrxMachine, GatherCoalescesConsecutiveRuns)
{
    DrxMachine m;
    const auto table = m.alloc(1024 * 4);
    const auto idx_seq = m.alloc(256 * 4);
    const auto idx_rand = m.alloc(256 * 4);
    const auto out = m.alloc(256 * 4);

    std::vector<std::int32_t> seq(256), rnd(256);
    Rng rng(1);
    for (int i = 0; i < 256; ++i) {
        seq[static_cast<std::size_t>(i)] = i;
        rnd[static_cast<std::size_t>(i)] =
            static_cast<std::int32_t>(rng.below(1024) & ~1ull);
    }
    m.write(idx_seq, reinterpret_cast<std::uint8_t *>(seq.data()), 1024);
    m.write(idx_rand, reinterpret_cast<std::uint8_t *>(rnd.data()), 1024);

    auto gather_prog = [&](std::uint64_t idx_addr) {
        return ProgramBuilder("g")
            .loop(0, 1)
            .streamCfg(0, idx_addr, DType::I32, 0, 0, 0, 256)
            .streamCfg(1, table, DType::F32, 0, 0, 0, 256)
            .streamCfg(2, out, DType::F32, 0, 0, 0, 256)
            .sync()
            .load(0, 0)
            .gather(1, 1, 0)
            .store(2, 1)
            .build();
    };
    const RunResult seq_res = m.run(gather_prog(idx_seq));
    const RunResult rand_res = m.run(gather_prog(idx_rand));
    // Random gathers pay burst-granularity penalties.
    EXPECT_GT(rand_res.mem_cycles, seq_res.mem_cycles * 4);
}

TEST(DrxMachine, TimingLaneScaling)
{
    // Compute-heavy program: more lanes -> fewer compute cycles.
    auto run_with_lanes = [](unsigned lanes) {
        DrxConfig cfg;
        cfg.lanes = lanes;
        DrxMachine m(cfg);
        const auto in = m.alloc(2048 * 4);
        const auto out = m.alloc(2048 * 4);
        Program p = ProgramBuilder("heavy")
                        .loop(0, 2)
                        .streamCfg(0, in, DType::F32, 1024, 0, 0, 1024)
                        .streamCfg(1, out, DType::F32, 1024, 0, 0, 1024)
                        .sync()
                        .load(0, 0)
                        .compute1(VFunc::Sqrt, 1, 0)
                        .compute1(VFunc::Exp, 1, 1)
                        .compute1(VFunc::Log1p, 1, 1)
                        .store(1, 1)
                        .build();
        return m.run(p).compute_cycles;
    };
    const auto c32 = run_with_lanes(32);
    const auto c128 = run_with_lanes(128);
    EXPECT_GT(c32, c128 * 3);
}

TEST(DrxMachine, DoubleBufferOverlapsComputeAndMemory)
{
    DrxConfig with, without;
    without.double_buffer = false;
    auto run = [](DrxConfig cfg) {
        DrxMachine m(cfg);
        const auto in = m.alloc(4096 * 4);
        const auto out = m.alloc(4096 * 4);
        Program p = ProgramBuilder("x")
                        .loop(0, 4)
                        .streamCfg(0, in, DType::F32, 1024, 0, 0, 1024)
                        .streamCfg(1, out, DType::F32, 1024, 0, 0, 1024)
                        .sync()
                        .load(0, 0)
                        .compute1(VFunc::Sqrt, 1, 0)
                        .store(1, 1)
                        .build();
        return m.run(p).total_cycles;
    };
    EXPECT_LT(run(with), run(without));
}

TEST(DrxMachine, SoftwareLoopsCostMore)
{
    DrxConfig hw, sw;
    sw.hardware_loops = false;
    auto run = [](DrxConfig cfg) {
        DrxMachine m(cfg);
        const auto in = m.alloc(1024 * 4);
        Program p = ProgramBuilder("x")
                        .loop(0, 256)
                        .streamCfg(0, in, DType::F32, 4, 0, 0, 4)
                        .sync()
                        .load(0, 0)
                        .compute1(VFunc::MulS, 1, 0, 1.5f)
                        .store(0, 1)
                        .build();
        return m.run(p).compute_cycles;
    };
    EXPECT_GT(run(sw), run(hw) + 256 * 7);
}

TEST(DrxMachine, OutOfRangeAccessIsFatal)
{
    DrxConfig cfg;
    cfg.dram_bytes = 4096;
    DrxMachine m(cfg);
    Program p = ProgramBuilder("oob")
                    .loop(0, 1)
                    .streamCfg(0, 4000, DType::F32, 0, 0, 0, 64)
                    .sync()
                    .load(0, 0)
                    .build();
    EXPECT_THROW(m.run(p), std::runtime_error);
}

TEST(DrxMachine, ScratchpadOverflowIsFatal)
{
    DrxConfig cfg;
    cfg.scratch_bytes = 1024; // tiny scratchpad
    DrxMachine m(cfg);
    const auto in = m.alloc(4096);
    Program p = ProgramBuilder("big")
                    .loop(0, 1)
                    .streamCfg(0, in, DType::F32, 0, 0, 0, 1024)
                    .sync()
                    .load(0, 0)
                    .build();
    EXPECT_THROW(m.run(p), std::runtime_error);
}

TEST(DrxMachine, FpgaClockRunsSlowerInWallClock)
{
    RunResult r;
    r.total_cycles = 1000;
    EXPECT_EQ(r.time(1e9), 1000u * 1000u);       // 1 us at 1 GHz
    EXPECT_EQ(r.time(250e6), 4u * 1000u * 1000u); // 4 us at 250 MHz
}

// ----------------------------------------------------------- compiler

namespace
{

/** Compile+run @p k on a fresh DRX and compare with the CPU executor. */
void
expectDrxMatchesCpu(const Kernel &k, std::uint64_t seed,
                    double tolerance = 0.0)
{
    const Bytes input = randomInput(k.input, seed);
    const Bytes cpu_out = restructure::executeOnCpu(k, input);

    DrxMachine m;
    Bytes drx_out;
    const RunResult res = runKernelOnDrx(k, input, m, &drx_out);
    EXPECT_GT(res.total_cycles, 0u);
    ASSERT_EQ(drx_out.size(), cpu_out.size()) << k.name;

    if (tolerance == 0.0) {
        EXPECT_EQ(drx_out, cpu_out) << k.name << ": bit-exact mismatch";
        return;
    }
    const auto a = toFloats(cpu_out), b = toFloats(drx_out);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(a[i], b[i], tolerance) << k.name << " elem " << i;
}

} // namespace

TEST(DrxCompiler, MelSpectrogramMatchesCpu)
{
    expectDrxMatchesCpu(restructure::melSpectrogram(16, 128, 32), 1);
}

TEST(DrxCompiler, VideoFrameMatchesCpu)
{
    expectDrxMatchesCpu(restructure::videoFrameRestructure(48, 64, 32), 2);
}

TEST(DrxCompiler, BrainSignalMatchesCpu)
{
    expectDrxMatchesCpu(restructure::brainSignalRestructure(8, 64, 16), 3);
}

TEST(DrxCompiler, TextRecordMatchesCpu)
{
    expectDrxMatchesCpu(restructure::textRecordRestructure(512, 64, 80),
                        4);
}

TEST(DrxCompiler, NerTokensMatchCpu)
{
    expectDrxMatchesCpu(restructure::nerTokenRestructure(300, 16, 32), 5);
}

TEST(DrxCompiler, DbColumnarizeMatchesCpu)
{
    expectDrxMatchesCpu(restructure::dbColumnarize(64), 6);
}

TEST(DrxCompiler, VectorReductionMatchesCpu)
{
    expectDrxMatchesCpu(restructure::vectorReduction(8, 256), 7);
}

TEST(DrxCompiler, TransposeLoweringMatchesCpu)
{
    Kernel k;
    k.name = "transpose";
    k.input = restructure::BufferDesc{DType::F32, {24, 16}};
    k.stages.push_back(restructure::transposeStage());
    expectDrxMatchesCpu(k, 8);
}

TEST(DrxCompiler, DenseMatVecFallback)
{
    // Dense weights defeat the banded analysis -> dense program.
    Kernel k;
    k.name = "dense_mv";
    k.input = restructure::BufferDesc{DType::F32, {4, 64}};
    auto w = std::make_shared<std::vector<float>>(8 * 64);
    Rng rng(9);
    for (auto &v : *w)
        v = static_cast<float>(rng.uniform(-1, 1));
    k.stages.push_back(restructure::matVecStage(8, 64, w));
    expectDrxMatchesCpu(k, 9);
}

TEST(DrxCompiler, BandedBeatsDenseOnTraffic)
{
    // The banded lowering must move far fewer weight bytes than dense.
    const Kernel k = restructure::melSpectrogram(64, 512, 64);
    const Bytes input = randomInput(k.input, 10);

    DrxMachine banded;
    const RunResult banded_res = runKernelOnDrx(k, input, banded);

    // Force-dense variant: same weights with the band info destroyed by
    // adding a tiny epsilon everywhere (nonzero everywhere -> width =
    // cols -> dense path).
    Kernel dense = k;
    auto w = std::make_shared<std::vector<float>>(*dense.stages[1].weights);
    for (auto &v : *w)
        v += 1e-12f;
    dense.stages[1].weights = w;
    DrxMachine densem;
    const RunResult dense_res = runKernelOnDrx(dense, input, densem);

    EXPECT_LT(banded_res.bytes_read * 3, dense_res.bytes_read);
    EXPECT_LT(banded_res.total_cycles, dense_res.total_cycles);
}

TEST(DrxCompiler, CompiledProgramsDisassemble)
{
    DrxMachine m;
    const auto compiled =
        compileKernel(restructure::melSpectrogram(8, 64, 16), m);
    ASSERT_EQ(compiled.programs.size(), 3u); // magnitude, matvec, log
    EXPECT_NE(compiled.programs[1].disassemble().find("ld.gather"),
              std::string::npos);
}

TEST(DrxCompiler, RejectsOversizedGatherSource)
{
    Kernel k;
    k.name = "big_gather";
    k.input = restructure::BufferDesc{DType::U8, {1ull << 25}};
    // A non-affine index pattern forces the index-table path, which
    // cannot address >2^24 elements exactly through float lanes.
    auto idx = std::make_shared<std::vector<std::uint32_t>>(
        std::vector<std::uint32_t>{0, 5, 1});
    k.stages.push_back(restructure::gatherStage(idx, {3}));
    DrxConfig cfg;
    cfg.dram_bytes = 80 * mib;
    DrxMachine m(cfg);
    EXPECT_THROW(compileKernel(k, m), std::runtime_error);
}

TEST(DrxCompiler, TimingScalesWithDataSize)
{
    auto cycles_for = [](std::size_t frames) {
        const Kernel k = restructure::melSpectrogram(frames, 64, 16);
        const Bytes input = randomInput(k.input, 11);
        DrxMachine m;
        return runKernelOnDrx(k, input, m).total_cycles;
    };
    const auto small = cycles_for(8);
    const auto large = cycles_for(64);
    EXPECT_GT(large, small * 4);
    EXPECT_LT(large, small * 16);
}
