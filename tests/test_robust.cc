/**
 * @file
 * Tests for the overload-protection and failure-containment layer:
 * credit-gate backpressure semantics, circuit-breaker state machine,
 * admission-control policies, runtime integration (shed at enqueue,
 * breaker quarantine, deadline budgets), jobs-invariant determinism of
 * breaker transition traces, and end-to-end containment on the
 * open-loop overload engine.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/scenario.hh"
#include "fault/fault.hh"
#include "robust/admission.hh"
#include "robust/breaker.hh"
#include "robust/credit.hh"
#include "runtime/chain.hh"
#include "runtime/runtime.hh"
#include "sys/overload.hh"
#include "sys/system.hh"
#include "trace/trace.hh"

using namespace dmx;
using namespace dmx::robust;

namespace
{

/** A kernel that increments every byte. */
runtime::Bytes
bump(const runtime::Bytes &in, kernels::OpCount &ops)
{
    runtime::Bytes out = in;
    for (auto &b : out)
        ++b;
    ops.int_ops += out.size();
    ops.bytes_read += in.size();
    ops.bytes_written += out.size();
    return out;
}

/** k1 (accel) -> restructure -> k2 (accel), small enough to run fast. */
sys::AppModel
tinyApp()
{
    sys::AppModel app;
    app.name = "tiny";
    app.input_bytes = 8 * mib;

    sys::KernelTiming k1;
    k1.name = "k1";
    k1.cpu_core_seconds = 0.010;
    k1.accel_cycles = 625'000;
    k1.accel_freq_hz = 250e6;
    k1.out_bytes = 16 * mib;
    app.kernels.push_back(k1);

    sys::KernelTiming k2 = k1;
    k2.name = "k2";
    k2.cpu_core_seconds = 0.008;
    k2.out_bytes = 1 * mib;
    app.kernels.push_back(k2);

    sys::MotionTiming m;
    m.name = "restructure";
    m.cpu_core_seconds = 0.030;
    m.drx_cycles = 1'000'000;
    m.in_bytes = 16 * mib;
    m.out_bytes = 16 * mib;
    app.motions.push_back(m);
    return app;
}

} // namespace

// ----------------------------------------------------------- CreditGate

TEST(CreditGate, GrantsInlineWithinWindow)
{
    CreditGate gate("q", 100);
    Tick granted_at = 0;
    int grants = 0;
    gate.acquire(60, 5, [&](Tick at) { granted_at = at; ++grants; });
    EXPECT_EQ(grants, 1);
    EXPECT_EQ(granted_at, 5u);
    EXPECT_EQ(gate.used(), 60u);
    EXPECT_EQ(gate.highWater(), 60u);
    EXPECT_EQ(gate.stalls(), 0u);
    EXPECT_TRUE(gate.wouldGrant(40));
    EXPECT_FALSE(gate.wouldGrant(41));
}

TEST(CreditGate, BlocksFifoAndAccountsStallTicks)
{
    CreditGate gate("q", 10);
    std::vector<int> order;
    gate.acquire(10, 0, [&](Tick) { order.push_back(0); });

    // Both block: the window is exhausted. FIFO even though the second
    // request is smaller and would fit first after a partial release.
    gate.acquire(8, 2, [&](Tick) { order.push_back(1); });
    gate.acquire(2, 3, [&](Tick) { order.push_back(2); });
    EXPECT_EQ(gate.waiting(), 2u);
    EXPECT_EQ(gate.stalls(), 2u);

    // Releasing 2 bytes frees too little for waiter 1; FIFO means
    // waiter 2 must keep waiting behind it.
    gate.release(2, 5);
    EXPECT_EQ(order, (std::vector<int>{0}));

    gate.release(8, 7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(gate.waiting(), 0u);
    // Waiter 1 stalled ticks 2..7, waiter 2 stalled 3..7.
    EXPECT_EQ(gate.stallTicks(), Tick{(7 - 2) + (7 - 3)});
    EXPECT_EQ(gate.used(), 10u);
    EXPECT_EQ(gate.highWater(), 10u);
}

TEST(CreditGate, RejectsImpossibleAcquires)
{
    EXPECT_THROW(CreditGate("q", 0), std::runtime_error);
    CreditGate gate("q", 8);
    EXPECT_THROW(gate.acquire(0, 0, [](Tick) {}), std::runtime_error);
    EXPECT_THROW(gate.acquire(9, 0, [](Tick) {}), std::runtime_error);
}

// ------------------------------------------------------- CircuitBreaker

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresAndFastFails)
{
    BreakerConfig cfg;
    cfg.enabled = true;
    cfg.failure_threshold = 3;
    cfg.cooldown = 1000;
    CircuitBreaker b("dev", cfg);

    EXPECT_EQ(b.state(), BreakerState::Closed);
    b.recordFailure(10);
    b.recordFailure(20);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_TRUE(b.allow(25));
    b.recordFailure(30);
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.opens(), 1u);

    // Inside the cool-down every request fast-fails.
    EXPECT_FALSE(b.allow(31));
    EXPECT_FALSE(b.allow(1029));
    EXPECT_EQ(b.fastFails(), 2u);

    // A success between failures resets the consecutive count.
    CircuitBreaker c("dev2", cfg);
    c.recordFailure(0);
    c.recordFailure(1);
    c.recordSuccess(2);
    c.recordFailure(3);
    c.recordFailure(4);
    EXPECT_EQ(c.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, CooldownProbeCycleAndQuarantineAccounting)
{
    BreakerConfig cfg;
    cfg.enabled = true;
    cfg.failure_threshold = 1;
    cfg.cooldown = 1000;
    CircuitBreaker b("dev", cfg);

    b.recordFailure(100); // -> Open at 100
    EXPECT_EQ(b.state(), BreakerState::Open);

    // Cool-down elapsed: the next request is admitted as a probe.
    EXPECT_TRUE(b.allow(1100));
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);

    // A failed probe re-arms the full cool-down.
    b.recordFailure(1100);
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.opens(), 2u);
    EXPECT_FALSE(b.allow(2000));

    // Second probe succeeds: the breaker closes.
    EXPECT_TRUE(b.allow(2100));
    b.recordSuccess(2200);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_EQ(b.closes(), 1u);
    // Quarantined 100..2200 (Open and HalfOpen both count).
    EXPECT_EQ(b.quarantineTicks(5000), Tick{2100});
}

TEST(CircuitBreaker, HalfOpenAdmitsOnlyTheProbeBudget)
{
    BreakerConfig cfg;
    cfg.enabled = true;
    cfg.failure_threshold = 1;
    cfg.cooldown = 100;
    cfg.half_open_probes = 2;
    CircuitBreaker b("dev", cfg);

    b.recordFailure(0);
    EXPECT_TRUE(b.allow(100));  // probe 1 (Open -> HalfOpen)
    EXPECT_TRUE(b.allow(101));  // probe 2
    EXPECT_FALSE(b.allow(102)); // probe budget exhausted
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);

    // Both probes must succeed before the breaker closes.
    b.recordSuccess(110);
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);
    b.recordSuccess(111);
    EXPECT_EQ(b.state(), BreakerState::Closed);
}

// -------------------------------------------------- AdmissionController

TEST(Admission, UnboundedAdmitsEverything)
{
    AdmissionController adm("gate");
    for (std::uint64_t d = 0; d < 100; ++d)
        EXPECT_TRUE(adm.admit(d, d, static_cast<unsigned>(d % 5)));
    EXPECT_EQ(adm.admitted(), 100u);
    EXPECT_EQ(adm.shed(), 0u);
}

TEST(Admission, StaticCapHalvesPerPriorityLevel)
{
    AdmissionConfig cfg;
    cfg.policy = AdmissionPolicy::StaticCap;
    cfg.queue_depth_cap = 4;
    AdmissionController adm("gate", cfg);

    // Priority 0 gets the full cap of 4...
    EXPECT_TRUE(adm.admit(0, 3, 0));
    EXPECT_FALSE(adm.admit(0, 4, 0));
    // ...priority 1 half of it...
    EXPECT_TRUE(adm.admit(0, 1, 1));
    EXPECT_FALSE(adm.admit(0, 2, 1));
    // ...and everyone keeps at least one slot.
    EXPECT_TRUE(adm.admit(0, 0, 60));
    EXPECT_FALSE(adm.admit(0, 1, 60));
    EXPECT_EQ(adm.shed(), 3u);
    EXPECT_EQ(adm.admitted(), 3u);
}

TEST(Admission, AdaptiveShedsAfterSojournStaysAboveTarget)
{
    AdmissionConfig cfg;
    cfg.policy = AdmissionPolicy::Adaptive;
    cfg.sojourn_target = 100;
    cfg.interval = 1000;
    AdmissionController adm("gate", cfg);

    // Below target: always admit.
    adm.recordSojourn(50, 0);
    EXPECT_TRUE(adm.admit(10, 99, 1));
    EXPECT_FALSE(adm.overloaded());

    // Above target at t=100: grace of one interval for priority 1,
    // two intervals for priority 0.
    adm.recordSojourn(500, 100);
    EXPECT_TRUE(adm.overloaded());
    EXPECT_TRUE(adm.admit(1099, 0, 1));
    EXPECT_FALSE(adm.admit(1100, 0, 1));
    EXPECT_TRUE(adm.admit(2099, 0, 0));
    EXPECT_FALSE(adm.admit(2100, 0, 0));

    // One below-target sample ends the episode.
    adm.recordSojourn(80, 3000);
    EXPECT_FALSE(adm.overloaded());
    EXPECT_TRUE(adm.admit(3001, 0, 1));
}

// -------------------------------------------- runtime integration

TEST(RobustRuntime, StaticCapShedsAtEnqueue)
{
    runtime::Platform plat;
    const runtime::DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, bump);
    RobustConfig rc;
    rc.admission.policy = AdmissionPolicy::StaticCap;
    rc.admission.queue_depth_cap = 1;
    plat.setRobustConfig(rc);
    ASSERT_NE(plat.deviceAdmission(dev), nullptr);

    runtime::Context c1 = plat.createContext();
    runtime::Context c2 = plat.createContext();
    const auto in1 = c1.createBuffer(runtime::Bytes(256, 1));
    const auto out1 = c1.createBuffer();
    const auto in2 = c2.createBuffer(runtime::Bytes(256, 2));
    const auto out2 = c2.createBuffer();

    runtime::Event e1 = c1.queue(dev).enqueueKernel(in1, out1);
    EXPECT_EQ(plat.outstandingCommands(dev), 1u);

    // The second command arrives while the first is outstanding: it is
    // shed up front, settling immediately without touching the device.
    runtime::Event e2 = c2.queue(dev).enqueueKernel(in2, out2);
    EXPECT_TRUE(e2.complete());
    EXPECT_EQ(e2.status(), runtime::Status::Shed);
    EXPECT_FALSE(e2.ok());

    plat.drain();
    EXPECT_TRUE(e1.ok());
    EXPECT_EQ(plat.faultStats(dev).shed, 1u);
    EXPECT_EQ(plat.outstandingCommands(dev), 0u);

    // With the first settled, a fresh command is admitted again.
    runtime::Event e3 = c2.queue(dev).enqueueKernel(in2, out2);
    plat.drain();
    EXPECT_TRUE(e3.ok());
    EXPECT_EQ(plat.deviceAdmission(dev)->shed(), 1u);
}

TEST(RobustRuntime, BreakerQuarantinesDeviceThenProbeRecovers)
{
    runtime::Platform plat;
    const runtime::DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, bump);
    fault::FaultPlan plan;
    plan.scriptKernel(0, fault::KernelAction::Fail);
    plan.scriptKernel(1, fault::KernelAction::Fail);
    plat.setFaultPlan(&plan);

    RobustConfig rc;
    rc.breaker.enabled = true;
    rc.breaker.failure_threshold = 2;
    rc.breaker.cooldown = 2 * tick_per_ms;
    plat.setRobustConfig(rc);
    const CircuitBreaker *b = plat.deviceBreaker(dev);
    ASSERT_NE(b, nullptr);

    // Each command gets its own context: commands behind a settled
    // non-Ok predecessor on the same in-order queue cascade Failed
    // (their input was never produced), which would mask the breaker
    // path this test exercises.
    runtime::Context c1 = plat.createContext();
    const auto in1 = c1.createBuffer(runtime::Bytes(256, 7));
    const auto out1 = c1.createBuffer();

    // Two scripted failures trip the breaker mid-command; the retry
    // that follows fast-fails against the open breaker (kernels have
    // no CPU fallback, so it sheds) instead of dispatching.
    runtime::Event e1 = c1.queue(dev).enqueueKernel(in1, out1);
    plat.drain();
    EXPECT_EQ(e1.status(), runtime::Status::Shed);
    EXPECT_EQ(b->state(), BreakerState::Open);
    EXPECT_EQ(b->opens(), 1u);
    EXPECT_EQ(plat.faultStats(dev).breaker_fast_fails, 1u);

    // Fresh work inside the cool-down is fast-failed up front.
    runtime::Context c2 = plat.createContext();
    const auto in2 = c2.createBuffer(runtime::Bytes(256, 7));
    const auto out2 = c2.createBuffer();
    runtime::Event e2 = c2.queue(dev).enqueueKernel(in2, out2);
    plat.drain();
    EXPECT_EQ(e2.status(), runtime::Status::Shed);
    EXPECT_EQ(plat.faultStats(dev).breaker_fast_fails, 2u);
    EXPECT_EQ(plat.faultStats(dev).shed, 2u);

    // Let the cool-down elapse in simulated time; the next command is
    // admitted as the HalfOpen probe, succeeds, and closes the breaker.
    plat.eventQueue().scheduleIn(3 * tick_per_ms, [] {});
    plat.drain();
    runtime::Context c3 = plat.createContext();
    const auto in3 = c3.createBuffer(runtime::Bytes(256, 7));
    const auto out3 = c3.createBuffer();
    runtime::Event e3 = c3.queue(dev).enqueueKernel(in3, out3);
    plat.drain();
    EXPECT_TRUE(e3.ok());
    EXPECT_EQ(b->state(), BreakerState::Closed);
    EXPECT_EQ(b->closes(), 1u);
    EXPECT_GT(b->quarantineTicks(plat.now()), Tick{0});
}

TEST(RobustRuntime, DeadlineBudgetBoundsRetriesAndWatchdogs)
{
    runtime::Platform plat;
    const runtime::DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, bump);
    fault::FaultPlan plan;
    for (std::uint64_t n = 0; n < 8; ++n)
        plan.scriptKernel(n, fault::KernelAction::Hang);
    plat.setFaultPlan(&plan);

    RobustConfig rc;
    rc.deadline = 3 * tick_per_ms;
    plat.setRobustConfig(rc);
    // The per-attempt watchdog alone would burn far more than the
    // whole deadline budget.
    ASSERT_GT(plat.commandPolicy().timeout, rc.deadline);

    runtime::Context ctx = plat.createContext();
    const auto in = ctx.createBuffer(runtime::Bytes(256, 7));
    const auto out = ctx.createBuffer();
    runtime::Event ev = ctx.queue(dev).enqueueKernel(in, out);
    plat.drain();

    // The hung command settles TimedOut at the deadline - the watchdog
    // is clipped to the remaining budget - instead of after the full
    // per-attempt timeout times the retry budget.
    EXPECT_EQ(ev.status(), runtime::Status::TimedOut);
    EXPECT_LE(ev.completeTime(), rc.deadline);
    EXPECT_GE(plat.faultStats(dev).deadline_exhausted, 1u);
    EXPECT_LT(ev.retries(), plat.commandPolicy().max_retries);
}

TEST(RobustRuntime, ZeroDeadlineDisablesTheBudget)
{
    // CommandPolicy::deadline == 0 means "no deadline", never "instant
    // timeout": the launch path must not arm a deadline, and the
    // watchdog clip must not underflow.
    runtime::Platform plat;
    const runtime::DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, bump);
    fault::FaultPlan plan; // benign: probabilities all zero
    plat.setFaultPlan(&plan);
    runtime::CommandPolicy pol = plat.commandPolicy();
    pol.deadline = 0;
    plat.setCommandPolicy(pol);

    runtime::Context ctx = plat.createContext();
    const auto in = ctx.createBuffer(runtime::Bytes(128, 5));
    const auto out = ctx.createBuffer();
    runtime::Event ev = ctx.queue(dev).enqueueKernel(in, out);
    plat.drain();

    EXPECT_EQ(ev.status(), runtime::Status::Ok);
    EXPECT_EQ(plat.faultStats(dev).deadline_exhausted, 0u);
}

TEST(RobustRuntime, ZeroRemainingDeadlineSettlesTimedOutAtDispatch)
{
    // A command whose entire deadline budget is already spent when it
    // dispatches (here: eaten by its queue predecessor) settles
    // TimedOut at the dispatch tick - the guard fires before any
    // watchdog arithmetic could underflow a zero remaining budget.
    const auto settleTime = [](Tick deadline) {
        runtime::Platform plat;
        const runtime::DeviceId dev =
            plat.addAccelerator("a0", accel::Domain::FFT, bump);
        fault::FaultPlan plan;
        plat.setFaultPlan(&plan);
        runtime::CommandPolicy pol = plat.commandPolicy();
        pol.deadline = deadline;
        plat.setCommandPolicy(pol);

        runtime::Context ctx = plat.createContext();
        const auto in = ctx.createBuffer(runtime::Bytes(128, 5));
        const auto mid = ctx.createBuffer();
        const auto out = ctx.createBuffer();
        runtime::Event first = ctx.queue(dev).enqueueKernel(in, mid);
        runtime::Event second = ctx.queue(dev).enqueueKernel(mid, out);
        plat.drain();
        EXPECT_TRUE(first.ok());
        struct R
        {
            Tick first_done;
            runtime::Status second_status;
            Tick second_done;
            std::uint64_t exhausted;
        };
        return R{first.completeTime(), second.status(),
                 second.completeTime(),
                 plat.faultStats(dev).deadline_exhausted};
    };

    // Measure when the predecessor settles, then re-run with exactly
    // that as the deadline: the second command dispatches with zero
    // budget remaining.
    const auto probe = settleTime(0);
    ASSERT_EQ(probe.second_status, runtime::Status::Ok);

    const auto r = settleTime(probe.first_done);
    EXPECT_EQ(r.first_done, probe.first_done);
    EXPECT_EQ(r.second_status, runtime::Status::TimedOut);
    EXPECT_EQ(r.second_done, probe.first_done); // settles at dispatch
    EXPECT_EQ(r.exhausted, 1u);
}

namespace
{

/** A platform with one accelerator whose every kernel launch hangs. */
struct HangingChainFixture
{
    runtime::Platform plat;
    runtime::DeviceId dev = 0;
    fault::FaultPlan plan;

    HangingChainFixture()
    {
        dev = plat.addAccelerator("a0", accel::Domain::FFT, bump);
        for (std::uint64_t n = 0; n < 32; ++n)
            plan.scriptKernel(n, fault::KernelAction::Hang);
        plat.setFaultPlan(&plan);
    }

    /** @p n_ops hanging Kernel descriptors as one chain submission. */
    runtime::ChainEvent
    submit(std::size_t n_ops)
    {
        ctx = plat.createContextPtr();
        std::vector<runtime::BufferId> bufs;
        bufs.push_back(ctx->createBuffer(runtime::Bytes(256, 7)));
        for (std::size_t i = 0; i < n_ops; ++i)
            bufs.push_back(ctx->createBuffer());
        std::vector<runtime::ChainOp> ops(n_ops);
        for (std::size_t i = 0; i < n_ops; ++i) {
            ops[i].kind = runtime::ChainOp::Kind::Kernel;
            ops[i].device = dev;
            ops[i].in = bufs[i];
            ops[i].out = bufs[i + 1];
        }
        return runtime::enqueueChain(*ctx, ops);
    }

    std::unique_ptr<runtime::Context> ctx;
};

} // namespace

TEST(RobustChain, DeadlineClipsOnceForTheWholeChain)
{
    // Counterpart of the per-command saturating-clip tests above: a
    // descriptor chain owns ONE watchdog budget (ops x timeout) and
    // CommandPolicy::deadline clips it once for the whole chain. A
    // per-hop clip would multiply the deadline by the descriptor
    // count; the hung chain must settle at submit + deadline exactly.
    HangingChainFixture f;
    runtime::CommandPolicy pol = f.plat.commandPolicy();
    pol.deadline = 3 * tick_per_ms;
    f.plat.setCommandPolicy(pol);
    ASSERT_GT(f.plat.commandPolicy().timeout, pol.deadline);

    const Tick submit_at = f.plat.now();
    runtime::ChainEvent ev = f.submit(3);
    f.plat.drain();

    EXPECT_EQ(ev.status(), runtime::Status::TimedOut);
    EXPECT_TRUE(ev.deadlineClipped());
    EXPECT_EQ(ev.completeTime(), submit_at + pol.deadline);
    EXPECT_EQ(ev.failedIndex(), 0); // descriptor 0 never completed
    EXPECT_EQ(ev.records()[0].status, runtime::Status::TimedOut);
    // Later descriptors were never attempted.
    EXPECT_EQ(ev.records()[1].status, runtime::Status::Pending);
    EXPECT_EQ(ev.records()[1].attempts, 0u);
}

TEST(RobustChain, WatchdogBudgetScalesWithDescriptorCount)
{
    // Without a deadline the chain watchdog is the per-command timeout
    // times the descriptor count - not a fresh watchdog per hop, and
    // not a single-command timeout for the whole chain.
    HangingChainFixture f;
    const runtime::CommandPolicy pol = f.plat.commandPolicy();
    ASSERT_EQ(pol.deadline, Tick{0});
    ASSERT_GT(pol.timeout, Tick{0});

    const Tick submit_at = f.plat.now();
    runtime::ChainEvent ev = f.submit(2);
    f.plat.drain();

    EXPECT_EQ(ev.status(), runtime::Status::TimedOut);
    EXPECT_FALSE(ev.deadlineClipped());
    EXPECT_EQ(ev.completeTime(), submit_at + 2 * pol.timeout);
}

TEST(RobustChain, ZeroDeadlineDisablesTheChainBudget)
{
    // deadline == 0 means "no deadline" for chains exactly as for
    // single commands: nothing clips, nothing underflows.
    runtime::Platform plat;
    const runtime::DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, bump);
    fault::FaultPlan plan; // benign: probabilities all zero
    plat.setFaultPlan(&plan);
    ASSERT_EQ(plat.commandPolicy().deadline, Tick{0});

    runtime::Context ctx = plat.createContext();
    const auto b0 = ctx.createBuffer(runtime::Bytes(128, 5));
    const auto b1 = ctx.createBuffer();
    const auto b2 = ctx.createBuffer();
    std::vector<runtime::ChainOp> ops(2);
    ops[0] = {runtime::ChainOp::Kind::Kernel, dev, 0, b0, b1, {}};
    ops[1] = {runtime::ChainOp::Kind::Kernel, dev, 0, b1, b2, {}};
    runtime::ChainEvent ev = runtime::enqueueChain(ctx, ops);
    plat.drain();

    EXPECT_EQ(ev.status(), runtime::Status::Ok);
    EXPECT_FALSE(ev.deadlineClipped());
    EXPECT_EQ(plat.faultStats(dev).deadline_exhausted, 0u);
    EXPECT_EQ(ev.records()[1].status, runtime::Status::Ok);
}

TEST(RobustRuntime, HalfOpenProbeFailureConsumesOneProbeAndReopens)
{
    runtime::Platform plat;
    const runtime::DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, bump);
    fault::FaultPlan plan;
    for (std::uint64_t n = 0; n < 8; ++n)
        plan.scriptKernel(n, fault::KernelAction::Fail);
    plat.setFaultPlan(&plan);

    RobustConfig rc;
    rc.breaker.enabled = true;
    rc.breaker.failure_threshold = 2;
    rc.breaker.cooldown = tick_per_ms;
    rc.breaker.half_open_probes = 1;
    plat.setRobustConfig(rc);

    // Fresh context per command: a settled error poisons its in-order
    // queue, and cascaded successors would muddy the probe accounting.
    const auto runCommand = [&] {
        auto c = plat.createContextPtr();
        const auto in = c->createBuffer(runtime::Bytes(64, 9));
        const auto out = c->createBuffer();
        runtime::Event e = c->queue(dev).enqueueKernel(in, out);
        plat.drain();
        return e.status();
    };

    // Command 1 fails its first attempts against scripted failures;
    // the breaker trips Open mid-retry (threshold 2), so the remaining
    // retry sheds at the breaker.
    EXPECT_EQ(runCommand(), runtime::Status::Shed);
    const robust::CircuitBreaker *br = plat.deviceBreaker(dev);
    ASSERT_NE(br, nullptr);
    EXPECT_EQ(br->state(), BreakerState::Open);
    EXPECT_EQ(br->opens(), 1u);
    const std::uint64_t kernels_before = plan.stats().kernels_seen;

    // Past the cool-down, the next command becomes the single HalfOpen
    // probe; its scripted failure re-opens the breaker, and the retry
    // finds the breaker Open again (probe budget spent), so it sheds
    // without touching the device.
    plat.eventQueue().scheduleIn(2 * rc.breaker.cooldown, [] {});
    plat.drain();
    EXPECT_EQ(runCommand(), runtime::Status::Shed);
    EXPECT_EQ(br->state(), BreakerState::Open);
    EXPECT_EQ(br->opens(), 2u); // Closed->Open, HalfOpen->Open
    // Exactly one probe reached the device.
    EXPECT_EQ(plan.stats().kernels_seen, kernels_before + 1);

    // While re-opened, fresh commands fast-fail without a device query.
    EXPECT_EQ(runCommand(), runtime::Status::Shed);
    EXPECT_EQ(plan.stats().kernels_seen, kernels_before + 1);
}

TEST(RobustRuntime, ShedIsObservableLikeOtherTerminalStates)
{
    EXPECT_EQ(runtime::toString(runtime::Status::Shed), "shed");

    runtime::Platform plat;
    const runtime::DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, bump);
    RobustConfig rc;
    rc.admission.policy = AdmissionPolicy::StaticCap;
    rc.admission.queue_depth_cap = 1;
    plat.setRobustConfig(rc);

    runtime::Context c1 = plat.createContext();
    runtime::Context c2 = plat.createContext();
    const auto in1 = c1.createBuffer(runtime::Bytes(64, 1));
    const auto out1 = c1.createBuffer();
    const auto in2 = c2.createBuffer(runtime::Bytes(64, 2));
    const auto out2 = c2.createBuffer();

    runtime::Event e1 = c1.queue(dev).enqueueKernel(in1, out1);
    runtime::Event e2 = c2.queue(dev).enqueueKernel(in2, out2);

    // onSettled on an already-shed event fires immediately, exactly
    // like it does for any complete event.
    bool fired = false;
    runtime::onSettled(e2, [&] { fired = true; });
    EXPECT_TRUE(fired);
    // A shed event is terminal, so completeTime() answers (with the
    // shed tick) instead of refusing like a pending one would.
    EXPECT_EQ(e2.completeTime(), plat.now());
    plat.drain();
    EXPECT_TRUE(e1.ok());
}

// ------------------------------------- determinism (jobs-invariance)

namespace
{

/**
 * One randomized breaker scenario: a platform with two flaky devices
 * under a seeded fault plan and the full protection stack, driven by a
 * batch of kernels. @return the serialized Robust-category trace.
 */
std::string
breakerScenario(exec::ScenarioContext &ctx)
{
    // Derive the fault seed from the scenario's split random stream:
    // the same index always sees the same seed, on any worker.
    const std::uint64_t seed = ctx.rng().next();

    runtime::Platform plat;
    std::vector<runtime::DeviceId> devs{
        plat.addAccelerator("a0", accel::Domain::FFT, bump),
        plat.addAccelerator("a1", accel::Domain::SVM, bump),
    };
    fault::FaultSpec spec;
    spec.seed = seed;
    spec.kernel_fail_prob = 0.35;
    spec.kernel_hang_prob = 0.05;
    fault::FaultPlan plan(spec);
    plat.setFaultPlan(&plan);

    RobustConfig rc;
    rc.breaker.enabled = true;
    rc.breaker.failure_threshold = 2;
    rc.breaker.cooldown = tick_per_ms;
    rc.admission.policy = AdmissionPolicy::StaticCap;
    rc.admission.queue_depth_cap = 4;
    rc.deadline = 200 * tick_per_ms;
    plat.setRobustConfig(rc);

    std::vector<std::unique_ptr<runtime::Context>> ctxs;
    std::vector<runtime::Event> evs;
    for (unsigned i = 0; i < 24; ++i) {
        ctxs.push_back(plat.createContextPtr());
        const auto in = ctxs.back()->createBuffer(
            runtime::Bytes(256, static_cast<std::uint8_t>(i)));
        const auto out = ctxs.back()->createBuffer();
        evs.push_back(
            ctxs.back()->queue(devs[i % devs.size()]).enqueueKernel(in, out));
        // Space arrivals out so breakers see both load and idle gaps.
        if (i % 4 == 3)
            plat.drain();
    }
    plat.drain();

    // Serialize every Robust-category span (breaker transitions, sheds,
    // fast-fails) with its ticks: any scheduling nondeterminism across
    // worker counts would show up here.
    const trace::TraceBuffer &tb = ctx.trace();
    std::string out;
    for (const trace::Span &s : tb.spans()) {
        if (s.cat != trace::Category::Robust)
            continue;
        out += tb.stringAt(s.name) + "|" + tb.stringAt(s.track) + "|" +
               std::to_string(s.begin) + "|" + std::to_string(s.end) + "\n";
    }
    out += "shed=" + std::to_string(tb.counterTotal("runtime.shed"));
    out += " ff=" +
           std::to_string(tb.counterTotal("runtime.breaker_fast_fails"));
    return out;
}

} // namespace

TEST(RobustDeterminism, BreakerTransitionTracesAreJobsInvariant)
{
    constexpr std::size_t kScenarios = 6;
    const auto fn = std::function<std::string(exec::ScenarioContext &,
                                              std::size_t)>(
        [](exec::ScenarioContext &ctx, std::size_t) {
            return breakerScenario(ctx);
        });

    exec::ScenarioRunner serial(1), pooled(8);
    const std::vector<std::string> a = serial.map<std::string>(kScenarios, fn);
    const std::vector<std::string> b = pooled.map<std::string>(kScenarios, fn);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "scenario " << i;

    // The sweep must actually exercise the breaker machinery: at 35%
    // kernel-fail some scenario trips at least one transition.
    bool any_robust = false;
    for (const std::string &s : a)
        if (s.find("breaker_open") != std::string::npos)
            any_robust = true;
    EXPECT_TRUE(any_robust);
}

namespace
{

/**
 * The scripted HalfOpen-probe sequence of
 * RobustRuntime.HalfOpenProbeFailureConsumesOneProbeAndReopens, as a
 * scenario: trip the breaker, wait out the cool-down, fail the single
 * probe. @return serialized Robust spans plus the breaker accounting.
 */
std::string
halfOpenScenario(exec::ScenarioContext &ctx)
{
    const std::uint64_t seed = ctx.rng().next();

    runtime::Platform plat;
    const runtime::DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, bump);
    fault::FaultSpec spec;
    spec.seed = seed; // varies backoff jitter across scenarios
    fault::FaultPlan plan(spec);
    for (std::uint64_t n = 0; n < 8; ++n)
        plan.scriptKernel(n, fault::KernelAction::Fail);
    plat.setFaultPlan(&plan);

    RobustConfig rc;
    rc.breaker.enabled = true;
    rc.breaker.failure_threshold = 2;
    rc.breaker.cooldown = tick_per_ms;
    plat.setRobustConfig(rc);

    // Fresh context per command (a settled error poisons its queue).
    const auto runCommand = [&] {
        auto c = plat.createContextPtr();
        const auto in = c->createBuffer(runtime::Bytes(64, 9));
        const auto out = c->createBuffer();
        c->queue(dev).enqueueKernel(in, out);
        plat.drain();
    };
    runCommand();
    plat.eventQueue().scheduleIn(2 * rc.breaker.cooldown, [] {});
    plat.drain();
    runCommand();

    const trace::TraceBuffer &tb = ctx.trace();
    std::string out;
    for (const trace::Span &s : tb.spans()) {
        if (s.cat != trace::Category::Robust)
            continue;
        out += tb.stringAt(s.name) + "|" + tb.stringAt(s.track) + "|" +
               std::to_string(s.begin) + "|" + std::to_string(s.end) +
               "\n";
    }
    const robust::CircuitBreaker *br = plat.deviceBreaker(dev);
    out += "opens=" + std::to_string(br->opens());
    out += " ff=" + std::to_string(br->fastFails());
    out += " kernels=" + std::to_string(plan.stats().kernels_seen);
    return out;
}

} // namespace

TEST(RobustDeterminism, HalfOpenProbeTracesAreJobsInvariant)
{
    constexpr std::size_t kScenarios = 6;
    const auto fn = std::function<std::string(exec::ScenarioContext &,
                                              std::size_t)>(
        [](exec::ScenarioContext &ctx, std::size_t) {
            return halfOpenScenario(ctx);
        });

    exec::ScenarioRunner serial(1), pooled(8);
    const std::vector<std::string> a = serial.map<std::string>(kScenarios, fn);
    const std::vector<std::string> b = pooled.map<std::string>(kScenarios, fn);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "scenario " << i;
        // Every scenario walks the same scripted state machine:
        // Closed->Open, cool-down, HalfOpen, probe fails, Open again.
        EXPECT_NE(a[i].find("breaker_half-open"), std::string::npos);
        EXPECT_NE(a[i].find("opens=2"), std::string::npos);
    }
}

// --------------------------------------------- sys closed-loop wiring

TEST(RobustSys, BackpressureIsNoOpWhenUncontended)
{
    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::BumpInTheWire;
    cfg.n_apps = 2;
    cfg.requests_per_app = 2;
    const std::vector<sys::AppModel> apps = {tinyApp()};

    const sys::RunStats legacy = sys::simulateSystem(cfg, apps);

    cfg.robust.backpressure.enabled = true;
    const sys::RunStats gated = sys::simulateSystem(cfg, apps);

    // A closed loop keeps at most one motion in flight per app, so the
    // credit gates never block and the run is bit-identical.
    EXPECT_EQ(gated.backpressure_stalls, 0u);
    EXPECT_EQ(gated.backpressure_stall_ticks, Tick{0});
    EXPECT_EQ(gated.queue_overflows, 0u);
    EXPECT_EQ(gated.makespan_ticks, legacy.makespan_ticks);
    EXPECT_EQ(gated.kernel_ticks, legacy.kernel_ticks);
    EXPECT_EQ(gated.avg_latency_ms, legacy.avg_latency_ms);
}

TEST(RobustSys, AdmissionShedsAndClosedLoopStillCompletes)
{
    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::BumpInTheWire;
    cfg.n_apps = 3;
    cfg.requests_per_app = 2;
    cfg.robust.admission.policy = AdmissionPolicy::StaticCap;
    cfg.robust.admission.queue_depth_cap = 1; // system-wide depth 1
    cfg.priorities = {0, 1, 2};
    const std::vector<sys::AppModel> apps = {tinyApp()};

    const sys::RunStats st = sys::simulateSystem(cfg, apps);

    // With a depth cap of one, concurrent apps must shed and re-issue;
    // the closed loop still drives every request to completion.
    EXPECT_GT(st.shed_requests, 0u);
    ASSERT_EQ(st.per_app_shed.size(), 3u);
    std::uint64_t total = 0;
    for (std::uint64_t s : st.per_app_shed)
        total += s;
    EXPECT_EQ(total, st.shed_requests);
    EXPECT_GT(st.makespan_ms, 0.0);
}

TEST(RobustSys, DeadlineMissesAreCountedPerApp)
{
    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::BumpInTheWire;
    cfg.n_apps = 2;
    cfg.requests_per_app = 2;
    cfg.robust.deadline = 1; // one picosecond: every request misses
    const std::vector<sys::AppModel> apps = {tinyApp()};

    const sys::RunStats st = sys::simulateSystem(cfg, apps);
    EXPECT_EQ(st.deadline_misses,
              std::uint64_t{cfg.n_apps} * cfg.requests_per_app);
    ASSERT_EQ(st.per_app_deadline_misses.size(), 2u);
    EXPECT_EQ(st.per_app_deadline_misses[0], 2u);
    EXPECT_EQ(st.per_app_deadline_misses[1], 2u);
}

TEST(RobustSys, PercentileNearestRank)
{
    EXPECT_EQ(sys::percentileNearestRank({}, 0.99), 0.0);
    EXPECT_EQ(sys::percentileNearestRank({5.0}, 0.99), 5.0);
    std::vector<double> v;
    for (int i = 100; i >= 1; --i)
        v.push_back(i);
    EXPECT_EQ(sys::percentileNearestRank(v, 0.99), 99.0);
    EXPECT_EQ(sys::percentileNearestRank(v, 0.50), 50.0);
    EXPECT_EQ(sys::percentileNearestRank(v, 1.00), 100.0);
}

// ------------------------------------------- overload engine (e2e)

TEST(OverloadEngine, ContainmentAtTwoXLoadWithFaults)
{
    sys::OverloadConfig base;
    base.devices = 4;
    base.requests = 96;
    base.load = 2.0;
    base.fault_rate = 0.1;
    base.seed = 1;

    const sys::OverloadStats legacy = sys::simulateOverload(base);

    sys::OverloadConfig prot = base;
    prot.robust.backpressure.enabled = true;
    prot.robust.admission.policy = AdmissionPolicy::StaticCap;
    prot.robust.admission.queue_depth_cap = 4;
    prot.robust.breaker.enabled = true;
    prot.deadline_factor = 16;
    const sys::OverloadStats guarded = sys::simulateOverload(prot);

    // The unprotected run overruns its submission rings and lets hung
    // kernels pin the tail; protection sheds the excess instead.
    EXPECT_GT(legacy.queue_overflows, 0u);
    EXPECT_EQ(guarded.queue_overflows, 0u);
    EXPECT_LE(guarded.max_ring_high_water, guarded.ring_credit_window);
    EXPECT_GT(guarded.shed, 0u);
    EXPECT_GT(guarded.goodput_rps, legacy.goodput_rps);
    EXPECT_LT(guarded.p99_latency_ms, legacy.p99_latency_ms);
    // Accounting closes: every offered request settles exactly once.
    EXPECT_EQ(guarded.offered, guarded.completed + guarded.shed +
                                   guarded.failed + guarded.timed_out);
    EXPECT_EQ(legacy.offered, legacy.completed + legacy.shed +
                                  legacy.failed + legacy.timed_out);
}

TEST(OverloadEngine, EqualConfigsGiveEqualStats)
{
    sys::OverloadConfig cfg;
    cfg.devices = 2;
    cfg.requests = 48;
    cfg.load = 2.0;
    cfg.fault_rate = 0.2;
    cfg.seed = 7;
    cfg.robust.backpressure.enabled = true;
    cfg.robust.admission.policy = AdmissionPolicy::StaticCap;
    cfg.robust.breaker.enabled = true;
    cfg.deadline_factor = 8;

    const sys::OverloadStats a = sys::simulateOverload(cfg);
    const sys::OverloadStats b = sys::simulateOverload(cfg);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.goodput_rps, b.goodput_rps);
    EXPECT_EQ(a.p99_latency_ms, b.p99_latency_ms);
    EXPECT_EQ(a.backpressure_stalls, b.backpressure_stalls);
    EXPECT_EQ(a.breaker_opens, b.breaker_opens);
    EXPECT_EQ(a.breaker_open_ms, b.breaker_open_ms);
}
