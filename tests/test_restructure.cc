/**
 * @file
 * Unit tests for the restructuring IR, shape inference, the CPU
 * reference executor, and the kernel catalog.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"
#include "restructure/ir.hh"

using namespace dmx;
using namespace dmx::restructure;

namespace
{

Bytes
floatBytes(const std::vector<float> &v)
{
    Bytes b(v.size() * 4);
    std::memcpy(b.data(), v.data(), b.size());
    return b;
}

std::vector<float>
toFloats(const Bytes &b)
{
    std::vector<float> v(b.size() / 4);
    std::memcpy(v.data(), b.data(), b.size());
    return v;
}

} // namespace

TEST(BufferDescTest, ElemsBytesRowsInner)
{
    BufferDesc d{DType::F16, {4, 8, 16}};
    EXPECT_EQ(d.elems(), 512u);
    EXPECT_EQ(d.bytes(), 1024u);
    EXPECT_EQ(d.inner(), 16u);
    EXPECT_EQ(d.rows(), 32u);
}

TEST(ShapeInference, MapAndCastPreserveShape)
{
    Kernel k;
    k.name = "t";
    k.input = BufferDesc{DType::U8, {10, 20}};
    k.stages.push_back(castStage(DType::F32));
    k.stages.push_back(mapStage({{MapFn::Scale, 2.0f}}));
    const BufferDesc out = k.output();
    EXPECT_EQ(out.shape, (std::vector<std::size_t>{10, 20}));
    EXPECT_EQ(out.dtype, DType::F32);
}

TEST(ShapeInference, PipelineShapes)
{
    const Kernel k = melSpectrogram(16, 128, 32);
    EXPECT_EQ(k.input.shape, (std::vector<std::size_t>{16, 256}));
    EXPECT_EQ(k.descAfter(1).shape, (std::vector<std::size_t>{16, 128}));
    EXPECT_EQ(k.output().shape, (std::vector<std::size_t>{16, 32}));
    EXPECT_EQ(k.output().dtype, DType::F32);
}

TEST(ShapeInference, RejectsBadStages)
{
    Kernel k;
    k.name = "bad";
    k.input = BufferDesc{DType::F32, {7}};
    k.stages.push_back(magnitudeStage()); // odd inner dim
    EXPECT_THROW(k.output(), std::runtime_error);

    Kernel k2;
    k2.name = "bad2";
    k2.input = BufferDesc{DType::F32, {4, 5}};
    k2.stages.push_back(matVecStage(
        3, 6, std::make_shared<std::vector<float>>(18, 1.0f)));
    EXPECT_THROW(k2.output(), std::runtime_error); // cols mismatch

    Kernel k3;
    k3.name = "bad3";
    k3.input = BufferDesc{DType::F32, {4}};
    auto idx = std::make_shared<std::vector<std::uint32_t>>(
        std::vector<std::uint32_t>{9});
    k3.stages.push_back(gatherStage(idx, {1}));
    EXPECT_THROW(k3.output(), std::runtime_error); // index out of range
}

TEST(CpuExec, MapChain)
{
    Kernel k;
    k.name = "map";
    k.input = BufferDesc{DType::F32, {4}};
    k.stages.push_back(mapStage(
        {{MapFn::Scale, 2.0f}, {MapFn::Offset, 1.0f}, {MapFn::Abs, 0}}));
    const Bytes out = executeOnCpu(k, floatBytes({-3, -1, 0, 2}));
    EXPECT_EQ(toFloats(out), (std::vector<float>{5, 1, 1, 5}));
}

TEST(CpuExec, CastQuantizesAndSaturates)
{
    Kernel k;
    k.name = "cast";
    k.input = BufferDesc{DType::F32, {4}};
    k.stages.push_back(castStage(DType::U8));
    const Bytes out =
        executeOnCpu(k, floatBytes({-5.0f, 0.4f, 254.6f, 300.0f}));
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 0);    // saturated low
    EXPECT_EQ(out[1], 0);    // rounds to 0
    EXPECT_EQ(out[2], 255);  // rounds up
    EXPECT_EQ(out[3], 255);  // saturated high
}

TEST(CpuExec, TransposeRoundTrip)
{
    Kernel k;
    k.name = "t";
    k.input = BufferDesc{DType::F32, {2, 3}};
    k.stages.push_back(transposeStage());
    const Bytes out = executeOnCpu(k, floatBytes({1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(toFloats(out), (std::vector<float>{1, 4, 2, 5, 3, 6}));

    // Transposing twice is the identity.
    Kernel k2 = k;
    k2.stages.push_back(transposeStage());
    const Bytes out2 = executeOnCpu(k2, floatBytes({1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(toFloats(out2), (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(CpuExec, MatVecAgainstHandComputation)
{
    Kernel k;
    k.name = "mv";
    k.input = BufferDesc{DType::F32, {2, 3}};
    auto w = std::make_shared<std::vector<float>>(
        std::vector<float>{1, 0, 0, 0, 1, 1}); // 2x3
    k.stages.push_back(matVecStage(2, 3, w));
    const Bytes out = executeOnCpu(k, floatBytes({1, 2, 3, 4, 5, 6}));
    EXPECT_EQ(toFloats(out), (std::vector<float>{1, 5, 4, 11}));
}

TEST(CpuExec, GatherReorders)
{
    Kernel k;
    k.name = "g";
    k.input = BufferDesc{DType::F32, {4}};
    auto idx = std::make_shared<std::vector<std::uint32_t>>(
        std::vector<std::uint32_t>{3, 3, 0, 1});
    k.stages.push_back(gatherStage(idx, {4}));
    const Bytes out = executeOnCpu(k, floatBytes({10, 11, 12, 13}));
    EXPECT_EQ(toFloats(out), (std::vector<float>{13, 13, 10, 11}));
}

TEST(CpuExec, MagnitudeOfKnownComplex)
{
    Kernel k;
    k.name = "mag";
    k.input = BufferDesc{DType::F32, {1, 4}};
    k.stages.push_back(magnitudeStage());
    const Bytes out = executeOnCpu(k, floatBytes({3, 4, 0, -2}));
    const auto v = toFloats(out);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_FLOAT_EQ(v[0], 5.0f);
    EXPECT_FLOAT_EQ(v[1], 2.0f);
}

TEST(CpuExec, ReduceSumsRows)
{
    Kernel k;
    k.name = "r";
    k.input = BufferDesc{DType::F32, {2, 3}};
    k.stages.push_back(reduceStage());
    const Bytes out = executeOnCpu(k, floatBytes({1, 2, 3, 10, 20, 30}));
    EXPECT_EQ(toFloats(out), (std::vector<float>{6, 60}));
}

TEST(CpuExec, PadWidensRows)
{
    Kernel k;
    k.name = "p";
    k.input = BufferDesc{DType::F32, {2, 2}};
    k.stages.push_back(padStage(4, -1.0f));
    const Bytes out = executeOnCpu(k, floatBytes({1, 2, 3, 4}));
    EXPECT_EQ(toFloats(out),
              (std::vector<float>{1, 2, -1, -1, 3, 4, -1, -1}));
}

TEST(CpuExec, RejectsWrongInputSize)
{
    Kernel k;
    k.name = "x";
    k.input = BufferDesc{DType::F32, {4}};
    k.stages.push_back(mapStage({{MapFn::Abs, 0}}));
    EXPECT_THROW(executeOnCpu(k, Bytes(3)), std::runtime_error);
}

TEST(CpuExec, OpCountsPopulated)
{
    const Kernel k = melSpectrogram(8, 64, 16);
    Bytes in(k.input.bytes(), 1);
    kernels::OpCount ops;
    executeOnCpu(k, in, &ops);
    EXPECT_GT(ops.flops, 0u);
    EXPECT_GT(ops.bytes_read, 0u);
    EXPECT_GT(ops.bytes_written, 0u);
}

TEST(CpuExec, TracerSeesStreamingAccesses)
{
    struct Counter : MemTracer
    {
        std::uint64_t reads = 0, writes = 0, instrs = 0;
        void read(std::uint64_t, std::size_t) override { ++reads; }
        void write(std::uint64_t, std::size_t) override { ++writes; }
        void
        retire(std::uint64_t n, std::size_t) override
        {
            instrs += n;
        }
    } tracer;

    Kernel k;
    k.name = "trace";
    k.input = BufferDesc{DType::F32, {64}};
    k.stages.push_back(mapStage({{MapFn::Scale, 0.5f}}));
    executeOnCpu(k, Bytes(256), nullptr, &tracer);
    EXPECT_EQ(tracer.reads, 64u);
    EXPECT_EQ(tracer.writes, 64u);
    EXPECT_GT(tracer.instrs, 0u);
}

TEST(Catalog, MelFilterbankRowsAreTriangles)
{
    const auto fb = makeMelFilterbank(16, 128, 16000);
    ASSERT_EQ(fb->size(), 16u * 128u);
    // Every filter has nonzero mass and peaks at <= 1.
    for (std::size_t m = 0; m < 16; ++m) {
        float sum = 0, peak = 0;
        for (std::size_t b = 0; b < 128; ++b) {
            const float w = (*fb)[m * 128 + b];
            EXPECT_GE(w, 0.0f);
            sum += w;
            peak = std::max(peak, w);
        }
        EXPECT_GT(sum, 0.0f) << "filter " << m;
        EXPECT_LE(peak, 1.0f + 1e-5f);
    }
}

TEST(Catalog, MelFilterbanksAreBanded)
{
    // Banding (contiguous nonzero span) is what the DRX compiler's
    // banded MatVec lowering exploits.
    const auto fb = makeMelFilterbank(32, 256, 16000);
    for (std::size_t m = 0; m < 32; ++m) {
        std::size_t first = 256, last = 0;
        for (std::size_t b = 0; b < 256; ++b) {
            if ((*fb)[m * 256 + b] != 0.0f) {
                first = std::min(first, b);
                last = b;
            }
        }
        ASSERT_LT(first, 256u) << "empty filter " << m;
        // The span is contiguous: no zeros strictly inside it.
        for (std::size_t b = first; b <= last; ++b) {
            // Triangular filters may touch zero only at the edges.
            if (b > first && b < last)
                EXPECT_GT((*fb)[m * 256 + b], 0.0f);
        }
        EXPECT_LT(last - first + 1, 256u / 2); // narrow vs full width
    }
}

TEST(Catalog, ResizeIndicesCoverSource)
{
    const auto idx = makeResizeIndices(48, 64, 32);
    ASSERT_EQ(idx->size(), 32u * 32u);
    for (const std::uint32_t i : *idx)
        EXPECT_LT(i, 48u * 64u);
    // Corners map to corners.
    EXPECT_EQ((*idx)[0], 0u);
}

TEST(Catalog, VideoFrameRestructureEndToEnd)
{
    const Kernel k = videoFrameRestructure(48, 64, 32);
    EXPECT_EQ(k.output().shape, (std::vector<std::size_t>{32, 32}));
    EXPECT_EQ(k.output().dtype, DType::F16);

    Bytes frame(48 * 64);
    for (std::size_t i = 0; i < frame.size(); ++i)
        frame[i] = static_cast<std::uint8_t>(i % 251);
    const Bytes out = executeOnCpu(k, frame);
    EXPECT_EQ(out.size(), 32u * 32u * 2u);
    // Values normalized into [-0.5, 0.5].
    for (std::size_t i = 0; i < 32 * 32; ++i) {
        std::uint16_t h;
        std::memcpy(&h, &out[i * 2], 2);
        const float v = halfToFloat(h);
        EXPECT_GE(v, -0.5f - 1e-3f);
        EXPECT_LE(v, 0.5f + 1e-3f);
    }
}

TEST(Catalog, TextRecordRestructurePadsRecords)
{
    const Kernel k = textRecordRestructure(128, 32, 40);
    EXPECT_EQ(k.output().shape, (std::vector<std::size_t>{4, 40}));
    Bytes text(128);
    for (std::size_t i = 0; i < text.size(); ++i)
        text[i] = static_cast<std::uint8_t>('a' + i % 26);
    const Bytes out = executeOnCpu(k, text);
    ASSERT_EQ(out.size(), 4u * 40u);
    // Record 1 starts with text[32]; padding bytes are zero.
    EXPECT_EQ(out[40], text[32]);
    EXPECT_EQ(out[39], 0);
    EXPECT_EQ(out[79], 0);
}

TEST(Catalog, DbColumnarizeIsFieldMajor)
{
    const Kernel k = dbColumnarize(3);
    Bytes rows(3 * 16);
    for (std::size_t i = 0; i < rows.size(); ++i)
        rows[i] = static_cast<std::uint8_t>(i);
    const Bytes out = executeOnCpu(k, rows);
    ASSERT_EQ(out.size(), rows.size());
    // Field 0 of row 1 (source bytes 16..23) lands at offset 8..15.
    for (int b = 0; b < 8; ++b)
        EXPECT_EQ(out[8 + static_cast<std::size_t>(b)], 16 + b);
    // Field 1 of row 0 (source bytes 8..15) lands at 3*8 + 0.
    for (int b = 0; b < 8; ++b)
        EXPECT_EQ(out[24 + static_cast<std::size_t>(b)], 8 + b);
}

TEST(Catalog, VectorReductionSums)
{
    const Kernel k = vectorReduction(3, 4);
    const Bytes out = executeOnCpu(
        k, floatBytes({1, 2, 3, 4, 10, 20, 30, 40, 100, 200, 300, 400}));
    EXPECT_EQ(toFloats(out), (std::vector<float>{111, 222, 333, 444}));
}

TEST(Catalog, BrainSignalShapes)
{
    const Kernel k = brainSignalRestructure(8, 64, 16);
    EXPECT_EQ(k.output().shape, (std::vector<std::size_t>{8, 16}));
    EXPECT_EQ(k.output().dtype, DType::F16);
    Rng rng(3);
    std::vector<float> in(8 * 128);
    for (auto &v : in)
        v = static_cast<float>(rng.uniform(-1, 1));
    const Bytes out = executeOnCpu(k, floatBytes(in));
    EXPECT_EQ(out.size(), 8u * 16u * 2u);
}

TEST(Catalog, NerTokenShapes)
{
    const Kernel k = nerTokenRestructure(100, 16, 32);
    EXPECT_EQ(k.output().shape, (std::vector<std::size_t>{16, 32}));
    EXPECT_EQ(k.output().dtype, DType::F32);
    const Bytes out = executeOnCpu(k, Bytes(100, 65));
    // 'A' (65) -> 65/255 - 0.5.
    const auto v = toFloats(out);
    EXPECT_NEAR(v[0], 65.0f / 255.0f - 0.5f, 1e-6f);
}

TEST(DtypeTest, HalfRoundTripExactForSmallInts)
{
    for (float v : {0.0f, 1.0f, -2.0f, 0.5f, 1024.0f, -0.25f})
        EXPECT_EQ(halfToFloat(floatToHalf(v)), v);
}

TEST(DtypeTest, HalfSaturatesAndRounds)
{
    EXPECT_EQ(halfToFloat(floatToHalf(1e9f)), 65504.0f); // saturate
    // 2049 is not representable in f16 (11-bit mantissa): rounds to 2048.
    EXPECT_EQ(halfToFloat(floatToHalf(2049.0f)), 2048.0f);
    EXPECT_EQ(halfToFloat(floatToHalf(2051.0f)), 2052.0f);
}

TEST(DtypeTest, SubnormalHalf)
{
    const float tiny = 5.96046448e-8f; // smallest positive subnormal
    EXPECT_GT(halfToFloat(floatToHalf(tiny)), 0.0f);
    EXPECT_EQ(halfToFloat(floatToHalf(1e-12f)), 0.0f); // underflow
}
