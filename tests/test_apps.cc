/**
 * @file
 * Tests for the benchmark suite builders: model shapes, timing
 * plausibility, and paper-scale system behaviour with the real apps.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/benchmarks.hh"
#include "sys/system.hh"

using namespace dmx;
using namespace dmx::apps;
using namespace dmx::sys;

namespace
{

/** Build the suite once; the builders run the functional kernels. */
const std::vector<AppModel> &
suite()
{
    static const std::vector<AppModel> s = [] {
        SuiteParams p;
        return standardSuite(p);
    }();
    return s;
}

} // namespace

TEST(AppSuite, FiveTableIApplications)
{
    ASSERT_EQ(suite().size(), 5u);
    EXPECT_EQ(suite()[0].name, "video_surveillance");
    EXPECT_EQ(suite()[1].name, "sound_detection");
    EXPECT_EQ(suite()[2].name, "brain_stimulation");
    EXPECT_EQ(suite()[3].name, "personal_info_redaction");
    EXPECT_EQ(suite()[4].name, "database_hash_join");
}

TEST(AppSuite, PipelinesAreWellFormed)
{
    for (const AppModel &app : suite()) {
        EXPECT_EQ(app.kernels.size(), 2u) << app.name;
        EXPECT_EQ(app.motions.size(), 1u) << app.name;
        for (const auto &k : app.kernels) {
            EXPECT_GT(k.cpu_core_seconds, 0.0) << app.name;
            EXPECT_GT(k.accel_cycles, 0u) << app.name;
            EXPECT_GT(k.out_bytes, 0u) << app.name;
        }
        for (const auto &m : app.motions) {
            EXPECT_GT(m.cpu_core_seconds, 0.0) << app.name;
            EXPECT_GT(m.drx_cycles, 0u) << app.name;
        }
    }
}

TEST(AppSuite, IntermediateBatchesMatchPaperRange)
{
    // Sec. IV-A: restructured batches are 6-16 MB.
    for (const AppModel &app : suite()) {
        const auto &m = app.motions[0];
        EXPECT_GE(m.in_bytes, 6 * mib) << app.name;
        EXPECT_LE(m.in_bytes, 17 * mib) << app.name;
    }
}

TEST(AppSuite, AcceleratorsBeatHostOnKernels)
{
    // Paper Fig. 3(b): geomean per-kernel accelerator speedup ~6.5x
    // against the multicore host share a kernel job can actually use.
    double log_sum = 0;
    int count = 0;
    cpu::HostParams host;
    for (const AppModel &app : suite()) {
        for (const auto &k : app.kernels) {
            const double cores = k.max_host_cores > 0
                                     ? k.max_host_cores
                                     : host.max_job_cores;
            const double host_wall_ms =
                k.cpu_core_seconds / cores * 1e3;
            const double accel_ms =
                static_cast<double>(k.accel_cycles) / k.accel_freq_hz *
                1e3;
            const double speedup = host_wall_ms / accel_ms;
            EXPECT_GT(speedup, 1.2) << app.name << ":" << k.name;
            EXPECT_LT(speedup, 60.0) << app.name << ":" << k.name;
            log_sum += std::log(speedup);
            ++count;
        }
    }
    const double geomean = std::exp(log_sum / count);
    EXPECT_GT(geomean, 3.0);
    EXPECT_LT(geomean, 15.0);
}

TEST(AppSuite, DrxBeatsHostOnRestructuring)
{
    cpu::HostParams host;
    for (const AppModel &app : suite()) {
        const auto &m = app.motions[0];
        const double host_wall_ms =
            m.cpu_core_seconds / host.max_job_cores * 1e3;
        const double drx_ms = static_cast<double>(m.drx_cycles) / 1e9 *
                              1e3; // 1 GHz ASIC
        // The DB columnar/partition op is DRAM-random-bound on both
        // sides, so its solo advantage is modest; the others are large.
        EXPECT_GT(host_wall_ms / drx_ms, 0.9) << app.name;
    }
}

TEST(AppSuite, MultiAxlRestructureShareInPaperRange)
{
    // Paper Fig. 12(a): restructuring is 55.7%-71.7% of baseline
    // end-to-end latency across concurrency levels.
    SystemConfig cfg;
    cfg.placement = Placement::MultiAxl;
    cfg.n_apps = 5;
    const RunStats stats = simulateSystem(cfg, suite());
    const double share =
        stats.breakdown.restructure_ms / stats.breakdown.total();
    EXPECT_GT(share, 0.40);
    EXPECT_LT(share, 0.85);
}

TEST(AppSuite, DmxEndToEndSpeedupInPaperRange)
{
    // Paper Fig. 11: 3.5x (1 app) to 8.2x (15 apps) average speedup.
    SystemConfig base, dmx;
    base.placement = Placement::MultiAxl;
    dmx.placement = Placement::BumpInTheWire;
    base.n_apps = dmx.n_apps = 5;
    const double speedup =
        simulateSystem(base, suite()).avg_latency_ms /
        simulateSystem(dmx, suite()).avg_latency_ms;
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 15.0);
}

TEST(AppSuite, NerExtensionHasThreeKernels)
{
    SuiteParams p;
    const AppModel app = buildPersonalInfoRedactionNer(p);
    EXPECT_EQ(app.kernels.size(), 3u);
    EXPECT_EQ(app.motions.size(), 2u);
    // Fig. 16: the NER kernel dominates compute.
    const double ner_ms = static_cast<double>(app.kernels[2].accel_cycles) /
                          app.kernels[2].accel_freq_hz;
    const double k1_ms = static_cast<double>(app.kernels[0].accel_cycles) /
                         app.kernels[0].accel_freq_hz;
    EXPECT_GT(ner_ms, k1_ms);
}

TEST(AppSuite, RestructureSuiteMatchesApps)
{
    const auto rs = restructureSuite(16);
    ASSERT_EQ(rs.size(), 5u);
    for (const auto &nr : rs) {
        EXPECT_FALSE(nr.kernel.stages.empty()) << nr.app;
        EXPECT_EQ(nr.input.size(), nr.kernel.input.bytes()) << nr.app;
    }
    // The video restructuring is flagged as the branchy outlier.
    EXPECT_GT(rs[0].branch_rate, rs[1].branch_rate);
}

TEST(AppSuite, DeterministicRebuild)
{
    SuiteParams p;
    const AppModel a = buildSoundDetection(p);
    const AppModel b = buildSoundDetection(p);
    EXPECT_EQ(a.kernels[0].accel_cycles, b.kernels[0].accel_cycles);
    EXPECT_EQ(a.motions[0].drx_cycles, b.motions[0].drx_cycles);
    EXPECT_DOUBLE_EQ(a.motions[0].cpu_core_seconds,
                     b.motions[0].cpu_core_seconds);
}

TEST(AppSuite, LaneCountAffectsDrxCycles)
{
    SuiteParams wide, narrow;
    narrow.drx.lanes = 16;
    const AppModel a = buildSoundDetection(wide);   // 128 lanes
    const AppModel b = buildSoundDetection(narrow); // 16 lanes
    EXPECT_LT(a.motions[0].drx_cycles, b.motions[0].drx_cycles);
}
