/**
 * @file
 * Unit tests for src/common: logging, stats, units, RNG, strings, table.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/percentile.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "common/units.hh"

using namespace dmx;

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("a=%d b=%s", 3, "x"), "a=3 b=x");
    EXPECT_EQ(strprintf("%.2f", 1.005), "1.00");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(dmx_panic("boom %d", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(dmx_fatal("user error"), std::runtime_error);
}

TEST(Logging, WarnIncrementsCounter)
{
    const auto before = warnCount();
    dmx_warn("something mildly wrong");
    EXPECT_EQ(warnCount(), before + 1);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(dmx_assert(1 + 1 == 2, "math works"));
    EXPECT_THROW(dmx_assert(false, "must fail"), std::logic_error);
}

TEST(Units, TickConversionsRoundTrip)
{
    EXPECT_EQ(tick_per_s, 1000000000000ull);
    EXPECT_DOUBLE_EQ(ticksToSeconds(tick_per_s), 1.0);
    EXPECT_DOUBLE_EQ(ticksToMs(tick_per_ms * 5), 5.0);
    EXPECT_EQ(secondsToTicks(0.001), tick_per_ms);
}

TEST(Units, ClockDomainPeriod)
{
    ClockDomain ghz{1e9};
    EXPECT_EQ(ghz.period(), 1000u); // 1 ns in ps
    EXPECT_EQ(ghz.cyclesToTicks(250), 250000u);

    ClockDomain fpga{250e6};
    EXPECT_EQ(fpga.period(), 4000u);
}

TEST(Units, TicksToCyclesRoundsUp)
{
    ClockDomain ghz{1e9};
    EXPECT_EQ(ghz.ticksToCycles(1000), 1u);
    EXPECT_EQ(ghz.ticksToCycles(1001), 2u);
    EXPECT_EQ(ghz.ticksToCycles(0), 0u);
}

TEST(Units, TransferTicks)
{
    // 1 GiB/s moving 1 MiB -> ~1/1024 s.
    const Tick t = transferTicks(mib, 1.0 * gib);
    EXPECT_NEAR(ticksToSeconds(t), 1.0 / 1024.0, 1e-9);
    EXPECT_EQ(transferTicks(0, 1e9), 0u);
    EXPECT_GE(transferTicks(1, 1e30), 1u); // never zero for nonzero bytes
}

TEST(Random, Deterministic)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool any_diff = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        any_diff |= a2.next() != c.next();
    EXPECT_TRUE(any_diff);
}

TEST(Random, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, UniformRangeAndMean)
{
    Rng rng(99);
    double sum = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Random, ExponentialMean)
{
    Rng rng(5);
    double sum = 0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Random, BetweenInclusive)
{
    Rng rng(1);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.between(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Stats, ScalarAccumulates)
{
    stats::StatGroup group("g");
    stats::Scalar s(&group, "s", "test scalar");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageMean)
{
    stats::Average avg(nullptr, "a", "test avg");
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    avg.sample(2);
    avg.sample(4);
    EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
    EXPECT_EQ(avg.count(), 2u);
}

TEST(Stats, DistributionBuckets)
{
    stats::Distribution d(nullptr, "d", "dist", 0, 10, 10);
    d.sample(-1);   // underflow
    d.sample(0);    // bucket 0
    d.sample(9.5);  // bucket 9
    d.sample(10);   // overflow
    EXPECT_EQ(d.count(), 4u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[9], 1u);
    EXPECT_DOUBLE_EQ(d.minSample(), -1);
    EXPECT_DOUBLE_EQ(d.maxSample(), 10);
}

TEST(Stats, DistributionRejectsBadSpec)
{
    EXPECT_THROW(stats::Distribution(nullptr, "d", "x", 5, 5, 4),
                 std::logic_error);
    EXPECT_THROW(stats::Distribution(nullptr, "d", "x", 0, 1, 0),
                 std::logic_error);
}

TEST(Stats, FormulaEvaluatesAtReadTime)
{
    stats::StatGroup group("g");
    stats::Scalar a(&group, "a", "a");
    stats::Formula f(&group, "f", "2a", [&] { return 2 * a.value(); });
    a += 3;
    EXPECT_DOUBLE_EQ(f.value(), 6.0);
    a += 1;
    EXPECT_DOUBLE_EQ(f.value(), 8.0);
}

TEST(Stats, GroupDumpContainsNames)
{
    stats::StatGroup group("sys");
    stats::Scalar a(&group, "sys.counter", "the counter");
    a += 7;
    std::ostringstream os;
    group.dumpAll(os);
    EXPECT_NE(os.str().find("sys.counter"), std::string::npos);
    EXPECT_NE(os.str().find('7'), std::string::npos);
}

TEST(Stats, GroupDumpJsonIsMachineReadable)
{
    stats::StatGroup group("sys");
    stats::Scalar a(&group, "sys.counter", "the counter");
    stats::Average avg(&group, "sys.avg", "an average");
    stats::Formula f(&group, "sys.double", "2x",
                     [&] { return 2 * a.value(); });
    a += 7;
    avg.sample(1.25);
    avg.sample(2.25);

    std::ostringstream os;
    group.dumpAllJson(os);
    const std::string json = os.str();
    // Integral values print as integers, fractional ones round-trip.
    EXPECT_EQ(json,
              "{\"group\":\"sys\",\"stats\":{"
              "\"sys.counter\":7,"
              "\"sys.avg.mean\":1.75,\"sys.avg.count\":2,"
              "\"sys.double\":14}}\n");
}

TEST(Stats, EmptyGroupDumpJsonIsValid)
{
    stats::StatGroup group("empty");
    std::ostringstream os;
    group.dumpAllJson(os);
    EXPECT_EQ(os.str(), "{\"group\":\"empty\",\"stats\":{}}\n");
}

TEST(StrUtil, SplitJoinRoundTrip)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(StrUtil, Trim)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StrUtil, StartsWith)
{
    EXPECT_TRUE(startsWith("fig11_speedup", "fig11"));
    EXPECT_FALSE(startsWith("fig", "fig11"));
}

TEST(StrUtil, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512.0 B");
    EXPECT_EQ(formatBytes(8 * 1024 * 1024), "8.0 MiB");
}

TEST(TableTest, PrintAlignsAndCsv)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"alpha", Table::num(1.5)});
    t.row({"b", "2"});
    EXPECT_EQ(t.rows(), 2u);

    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("demo"), std::string::npos);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "name,value\nalpha,1.50\nb,2\n");
}

// ------------------------------------------------------------------
// Shared nearest-rank percentile / latency-summary helper
// (common/percentile.hh): the one definition of "p99" every reporting
// layer agrees on.

TEST(Percentile, SingleElementReturnsItAtEveryPercentile)
{
    const std::vector<double> one{7.5};
    EXPECT_EQ(common::percentileNearestRank(one, 0.001), 7.5);
    EXPECT_EQ(common::percentileNearestRank(one, 0.5), 7.5);
    EXPECT_EQ(common::percentileNearestRank(one, 0.99), 7.5);
    EXPECT_EQ(common::percentileNearestRank(one, 1.0), 7.5);

    const std::vector<Tick> one_t{42};
    EXPECT_EQ(common::percentileNearestRank(one_t, 0.999), Tick{42});
}

TEST(Percentile, NearestRankSemanticsOnTinySamples)
{
    // rank = clamp(ceil(p * n), 1, n), result = sorted[rank - 1].
    const std::vector<double> two{10, 20};
    EXPECT_EQ(common::percentileNearestRank(two, 0.50), 10); // rank 1
    EXPECT_EQ(common::percentileNearestRank(two, 0.51), 20); // rank 2
    EXPECT_EQ(common::percentileNearestRank(two, 0.99), 20);

    const std::vector<double> five{5, 4, 3, 2, 1}; // unsorted input
    EXPECT_EQ(common::percentileNearestRank(five, 0.2), 1);  // rank 1
    EXPECT_EQ(common::percentileNearestRank(five, 0.21), 2); // rank 2
    EXPECT_EQ(common::percentileNearestRank(five, 0.8), 4);
    EXPECT_EQ(common::percentileNearestRank(five, 1.0), 5);

    EXPECT_EQ(common::percentileNearestRank(std::vector<double>{}, 0.99),
              0);
}

TEST(Percentile, SummaryMeanSumsInSampleOrderAndPinsTriple)
{
    const std::vector<double> s{4, 1, 3, 2};
    const common::LatencySummary sum = common::summarizeLatencies(s);
    EXPECT_EQ(sum.count, 4u);
    // Mean accumulates in sample order: ((4 + 1) + 3) + 2, then / 4.
    EXPECT_EQ(sum.mean_ms, (((4.0 + 1.0) + 3.0) + 2.0) / 4.0);
    EXPECT_EQ(sum.p50_ms, 2);  // rank ceil(0.5*4)=2 -> sorted[1]
    EXPECT_EQ(sum.p99_ms, 4);  // rank ceil(3.96)=4 -> sorted[3]
    EXPECT_EQ(sum.p999_ms, 4);

    const common::LatencySummary empty = common::summarizeLatencies({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.mean_ms, 0);
    EXPECT_EQ(empty.p999_ms, 0);
}
