/**
 * @file
 * System-level tests: placement behaviour, contention scaling,
 * breakdowns, energy, and the collective operations. Uses a synthetic
 * application model so expectations are analyzable by hand.
 */

#include <gtest/gtest.h>

#include "sys/calibration.hh"
#include "sys/collectives.hh"
#include "sys/system.hh"

using namespace dmx;
using namespace dmx::sys;

namespace
{

/** k1 (2.5 ms accel) -> 16 MB motion -> k2 (2.5 ms accel). */
AppModel
tinyApp()
{
    AppModel app;
    app.name = "tiny";
    app.input_bytes = 8 * mib;

    KernelTiming k1;
    k1.name = "k1";
    k1.cpu_core_seconds = 0.010;
    k1.accel_cycles = 625'000; // 2.5 ms at 250 MHz
    k1.accel_freq_hz = 250e6;
    k1.out_bytes = 16 * mib;
    app.kernels.push_back(k1);

    KernelTiming k2 = k1;
    k2.name = "k2";
    k2.cpu_core_seconds = 0.008;
    k2.out_bytes = 1 * mib;
    app.kernels.push_back(k2);

    MotionTiming m;
    m.name = "restructure";
    m.cpu_core_seconds = 0.030;    // 7.5 ms at 4 cores
    m.drx_cycles = 1'000'000;      // 1 ms at 1 GHz
    m.in_bytes = 16 * mib;
    m.out_bytes = 8 * mib;
    app.motions.push_back(m);
    return app;
}

RunStats
runPlacement(Placement p, unsigned n_apps, unsigned requests = 3)
{
    SystemConfig cfg;
    cfg.placement = p;
    cfg.n_apps = n_apps;
    cfg.requests_per_app = requests;
    return simulateSystem(cfg, {tinyApp()});
}

} // namespace

TEST(SystemSim, AllCpuLatencyMatchesHandComputation)
{
    const RunStats stats = runPlacement(Placement::AllCpu, 1);
    // Jobs run alone at the 4-core cap: 2.5 + 7.5 + 2 ms.
    EXPECT_NEAR(stats.avg_latency_ms, 12.0, 0.5);
    EXPECT_NEAR(stats.breakdown.restructure_ms, 7.5, 0.3);
    EXPECT_NEAR(stats.breakdown.movement_ms, 0.0, 1e-6);
    EXPECT_EQ(stats.interrupts, 0u);
}

TEST(SystemSim, MultiAxlAcceleratesKernelsOnly)
{
    const RunStats all_cpu = runPlacement(Placement::AllCpu, 1);
    const RunStats multi = runPlacement(Placement::MultiAxl, 1);
    // Kernels: 10 + 8 ms host work -> 2 x 2.5 ms accel.
    EXPECT_NEAR(multi.breakdown.kernel_ms, 5.0, 0.1);
    // Restructuring still ~7.5 ms on the host; end-to-end improves only
    // modestly (the paper's Amdahl observation, Fig. 3(b)).
    EXPECT_GT(multi.breakdown.restructure_ms, 7.0);
    EXPECT_LT(all_cpu.avg_latency_ms / multi.avg_latency_ms, 1.5);
    EXPECT_GT(multi.breakdown.movement_ms, 0.0);
}

TEST(SystemSim, BitwAcceleratesDataMotion)
{
    const RunStats multi = runPlacement(Placement::MultiAxl, 1);
    const RunStats bitw = runPlacement(Placement::BumpInTheWire, 1);
    EXPECT_LT(bitw.avg_latency_ms, multi.avg_latency_ms / 2.0);
    // Restructure share collapses (paper Fig. 12: 66.8% -> 17.0%).
    const double multi_share = multi.breakdown.restructure_ms /
                               multi.breakdown.total();
    const double bitw_share = bitw.breakdown.restructure_ms /
                              bitw.breakdown.total();
    // (The synthetic app is lighter on restructuring than the real
    // suite; the paper-scale share is checked in test_apps.cc.)
    EXPECT_GT(multi_share, 0.40);
    EXPECT_LT(bitw_share, 0.25);
}

TEST(SystemSim, SpeedupGrowsWithConcurrency)
{
    // Paper Fig. 11: 3.5x at 1 app -> 8.2x at 15 apps.
    double speedup1, speedup15;
    {
        const RunStats m = runPlacement(Placement::MultiAxl, 1);
        const RunStats d = runPlacement(Placement::BumpInTheWire, 1);
        speedup1 = m.avg_latency_ms / d.avg_latency_ms;
    }
    {
        const RunStats m = runPlacement(Placement::MultiAxl, 15);
        const RunStats d = runPlacement(Placement::BumpInTheWire, 15);
        speedup15 = m.avg_latency_ms / d.avg_latency_ms;
    }
    EXPECT_GT(speedup1, 1.5);
    EXPECT_GT(speedup15, speedup1 * 1.3);
}

TEST(SystemSim, PlacementOrderingMatchesFig14)
{
    // Integrated <= Standalone <= Bump-in-the-Wire <= PCIe-Integrated.
    const unsigned n = 10;
    const double base =
        runPlacement(Placement::MultiAxl, n).avg_latency_ms;
    const double integrated =
        base / runPlacement(Placement::IntegratedDrx, n).avg_latency_ms;
    const double standalone =
        base / runPlacement(Placement::StandaloneDrx, n).avg_latency_ms;
    const double bitw =
        base / runPlacement(Placement::BumpInTheWire, n).avg_latency_ms;
    const double pcie_int =
        base / runPlacement(Placement::PcieIntegrated, n).avg_latency_ms;

    EXPECT_GT(integrated, 1.0);
    EXPECT_LE(integrated, standalone * 1.02);
    EXPECT_LE(standalone, bitw * 1.02);
    EXPECT_LE(bitw, pcie_int * 1.02);
}

TEST(SystemSim, ThroughputImprovesMoreThanLatency)
{
    // Paper Fig. 13: throughput gains exceed latency gains because the
    // CPU restructuring stage is the pipeline bottleneck.
    const unsigned n = 10;
    const RunStats m = runPlacement(Placement::MultiAxl, n);
    const RunStats d = runPlacement(Placement::BumpInTheWire, n);
    const double latency_speedup = m.avg_latency_ms / d.avg_latency_ms;
    const double tput_gain = d.avg_throughput_rps / m.avg_throughput_rps;
    EXPECT_GT(tput_gain, latency_speedup);
}

TEST(SystemSim, EnergyImprovesWithDmx)
{
    const unsigned n = 5;
    const RunStats m = runPlacement(Placement::MultiAxl, n);
    const RunStats d = runPlacement(Placement::BumpInTheWire, n);
    EXPECT_GT(m.energy.total(), 0.0);
    EXPECT_GT(m.energy.total() / d.energy.total(), 1.5);
}

TEST(SystemSim, StandaloneWinsEnergyAtScale)
{
    // Paper Fig. 15: BitW best at <=5 apps, Standalone best at >=10
    // (replicated glue/mux static power vs amortized cards).
    const RunStats bitw1 = runPlacement(Placement::BumpInTheWire, 1);
    const RunStats stand1 = runPlacement(Placement::StandaloneDrx, 1);
    EXPECT_LT(bitw1.energy.total(), stand1.energy.total());

    const RunStats bitw15 = runPlacement(Placement::BumpInTheWire, 15);
    const RunStats stand15 = runPlacement(Placement::StandaloneDrx, 15);
    EXPECT_LT(stand15.energy.total(), bitw15.energy.total());
}

TEST(SystemSim, InterruptsAreCounted)
{
    const RunStats d = runPlacement(Placement::BumpInTheWire, 2);
    EXPECT_GT(d.interrupts + d.polls, 0u);
    EXPECT_GT(d.pcie_bytes, 0u);
}

TEST(SystemSim, RejectsMalformedInputs)
{
    SystemConfig cfg;
    EXPECT_THROW(simulateSystem(cfg, {}), std::runtime_error);

    AppModel bad = tinyApp();
    bad.motions.clear();
    EXPECT_THROW(simulateSystem(cfg, {bad}), std::runtime_error);

    cfg.n_apps = 0;
    EXPECT_THROW(simulateSystem(cfg, {tinyApp()}), std::runtime_error);
}

TEST(SystemSim, PcieGenerationSensitivity)
{
    // Paper Fig. 19: newer generations slightly reduce the *relative*
    // speedup because the baseline benefits more from extra bandwidth.
    auto speedup_for = [&](pcie::Generation gen) {
        SystemConfig cfg;
        cfg.n_apps = 10;
        cfg.gen = gen;
        cfg.placement = Placement::MultiAxl;
        const double base =
            simulateSystem(cfg, {tinyApp()}).avg_latency_ms;
        cfg.placement = Placement::BumpInTheWire;
        const double dmx =
            simulateSystem(cfg, {tinyApp()}).avg_latency_ms;
        return base / dmx;
    };
    const double g3 = speedup_for(pcie::Generation::Gen3);
    const double g5 = speedup_for(pcie::Generation::Gen5);
    EXPECT_GT(g3, 1.0);
    EXPECT_LE(g5, g3);
}

TEST(Collectives, BroadcastSpeedupInPaperRange)
{
    CollectiveConfig cfg;
    cfg.n_accels = 8;
    const CollectiveResult res = simulateBroadcast(cfg);
    EXPECT_GT(res.speedup(), 1.5);
    EXPECT_LT(res.speedup(), 12.0);
}

TEST(Collectives, AllReduceBeatsBroadcast)
{
    // Paper Fig. 17: all-reduce gains exceed broadcast gains (more DMA
    // transfers and restructuring to accelerate).
    CollectiveConfig cfg;
    cfg.n_accels = 16;
    const double bc = simulateBroadcast(cfg).speedup();
    const double ar = simulateAllReduce(cfg).speedup();
    EXPECT_GT(ar, bc);
}

TEST(Collectives, SpeedupScalesWithAccelerators)
{
    CollectiveConfig small, large;
    small.n_accels = 4;
    large.n_accels = 32;
    EXPECT_GT(simulateAllReduce(large).speedup(),
              simulateAllReduce(small).speedup());
}

TEST(Collectives, RejectsDegenerateSizes)
{
    CollectiveConfig cfg;
    cfg.n_accels = 1;
    EXPECT_THROW(simulateBroadcast(cfg), std::runtime_error);
    EXPECT_THROW(simulateAllReduce(cfg), std::runtime_error);
}
