/**
 * @file
 * Unit tests for the PCIe flow-level fabric: topology rules, bandwidth
 * math, latency accounting, and max-min fair sharing under contention.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "pcie/fabric.hh"
#include "pcie/generation.hh"
#include "sim/eventq.hh"

using namespace dmx;
using namespace dmx::pcie;

TEST(Generation, PerLaneBandwidth)
{
    EXPECT_NEAR(perLaneBandwidth(Generation::Gen3), 0.985e9, 0.001e9);
    EXPECT_NEAR(perLaneBandwidth(Generation::Gen4), 1.969e9, 0.001e9);
    EXPECT_NEAR(perLaneBandwidth(Generation::Gen5), 3.938e9, 0.001e9);
    EXPECT_EQ(toString(Generation::Gen4), "Gen4");
}

TEST(Generation, LinkBandwidthScalesWithLanes)
{
    const auto x8 = linkBandwidth(Generation::Gen3, 8);
    const auto x16 = linkBandwidth(Generation::Gen3, 16);
    EXPECT_DOUBLE_EQ(x16, 2 * x8);
    EXPECT_THROW(linkBandwidth(Generation::Gen3, 0), std::runtime_error);
    EXPECT_THROW(linkBandwidth(Generation::Gen3, 32), std::runtime_error);
}

namespace
{

/** Star topology: RC -- switch -- N endpoints. */
struct StarFixture
{
    sim::EventQueue eq;
    Fabric fabric{eq, "fab"};
    NodeId rc;
    NodeId sw;
    std::vector<NodeId> eps;

    explicit StarFixture(unsigned n_eps, Generation gen = Generation::Gen3)
    {
        rc = fabric.addNode(NodeKind::RootComplex, "rc");
        sw = fabric.addNode(NodeKind::Switch, "sw0");
        fabric.connect(rc, sw, gen, 8); // x8 upstream (as in the paper)
        for (unsigned i = 0; i < n_eps; ++i) {
            eps.push_back(fabric.addNode(NodeKind::EndPoint,
                                         "ep" + std::to_string(i)));
            fabric.connect(sw, eps.back(), gen, 16); // x16 downstream
        }
    }
};

} // namespace

TEST(FabricTopology, RejectsCycles)
{
    StarFixture f(2);
    EXPECT_THROW(f.fabric.connect(f.eps[0], f.eps[1], Generation::Gen3, 4),
                 std::runtime_error);
}

TEST(FabricTopology, RejectsSelfLoopAndBadIds)
{
    StarFixture f(1);
    EXPECT_THROW(f.fabric.connect(f.sw, f.sw, Generation::Gen3, 4),
                 std::runtime_error);
    EXPECT_THROW(f.fabric.connect(99, f.sw, Generation::Gen3, 4),
                 std::runtime_error);
}

TEST(FabricTopology, PathLengthAndSwitches)
{
    StarFixture f(3);
    EXPECT_EQ(f.fabric.pathLength(f.eps[0], f.eps[1]), 2u);
    EXPECT_EQ(f.fabric.switchesOnPath(f.eps[0], f.eps[1]), 1u);
    EXPECT_EQ(f.fabric.pathLength(f.rc, f.eps[0]), 2u);
    EXPECT_EQ(f.fabric.pathLength(f.rc, f.sw), 1u);
    EXPECT_EQ(f.fabric.switchesOnPath(f.rc, f.sw), 0u);
}

TEST(FabricFlow, SingleFlowTiming)
{
    StarFixture f(1);
    const std::uint64_t bytes = 8 * mib;
    Tick done_at = 0;
    f.fabric.startFlow(f.eps[0], f.rc, bytes,
                       [&] { done_at = f.eq.now(); });
    f.eq.run();

    // Bottleneck is the x8 upstream link.
    const double bw = linkBandwidth(Generation::Gen3, 8);
    const double expect_sec = static_cast<double>(bytes) / bw;
    const Tick overhead = f.fabric.params().dma_setup +
                          f.fabric.params().switch_latency;
    EXPECT_GT(done_at, 0u);
    EXPECT_NEAR(ticksToSeconds(done_at - overhead), expect_sec,
                expect_sec * 0.01);
}

TEST(FabricFlow, ZeroSwitchlessPathLatency)
{
    // Direct RC<->EP link: only DMA setup latency applies.
    sim::EventQueue eq;
    Fabric fab(eq, "fab");
    const NodeId rc = fab.addNode(NodeKind::RootComplex, "rc");
    const NodeId ep = fab.addNode(NodeKind::EndPoint, "ep");
    fab.connect(rc, ep, Generation::Gen4, 16);
    Tick done_at = 0;
    fab.startFlow(rc, ep, 0, [&] { done_at = eq.now(); });
    eq.run();
    EXPECT_GE(done_at, fab.params().dma_setup);
    EXPECT_LE(done_at, fab.params().dma_setup + 2);
}

TEST(FabricFlow, FairSharingHalvesThroughput)
{
    // Two endpoint->RC flows share the x8 upstream: each should take
    // about twice the solo time.
    StarFixture solo(2);
    const std::uint64_t bytes = 4 * mib;
    Tick solo_done = 0;
    solo.fabric.startFlow(solo.eps[0], solo.rc, bytes,
                          [&] { solo_done = solo.eq.now(); });
    solo.eq.run();

    StarFixture pair(2);
    Tick a_done = 0, b_done = 0;
    pair.fabric.startFlow(pair.eps[0], pair.rc, bytes,
                          [&] { a_done = pair.eq.now(); });
    pair.fabric.startFlow(pair.eps[1], pair.rc, bytes,
                          [&] { b_done = pair.eq.now(); });
    pair.eq.run();

    EXPECT_NEAR(static_cast<double>(a_done) / static_cast<double>(solo_done),
                2.0, 0.05);
    EXPECT_NEAR(static_cast<double>(b_done) / static_cast<double>(solo_done),
                2.0, 0.05);
}

TEST(FabricFlow, FullDuplexDirectionsDoNotContend)
{
    // One flow up, one flow down: full duplex means no slowdown.
    StarFixture f(2);
    const std::uint64_t bytes = 4 * mib;
    Tick up_done = 0, down_done = 0;
    f.fabric.startFlow(f.eps[0], f.rc, bytes, [&] { up_done = f.eq.now(); });
    f.fabric.startFlow(f.rc, f.eps[1], bytes,
                       [&] { down_done = f.eq.now(); });
    f.eq.run();

    StarFixture solo(2);
    Tick solo_done = 0;
    solo.fabric.startFlow(solo.eps[0], solo.rc, bytes,
                          [&] { solo_done = solo.eq.now(); });
    solo.eq.run();

    EXPECT_NEAR(static_cast<double>(up_done) /
                    static_cast<double>(solo_done), 1.0, 0.02);
    EXPECT_NEAR(static_cast<double>(down_done) /
                    static_cast<double>(solo_done), 1.0, 0.02);
}

TEST(FabricFlow, PeerToPeerAvoidsUpstream)
{
    // EP0 -> EP1 under the same switch runs at x16 speed, unaffected by
    // a concurrent upstream-saturating flow. This is the bump-in-the-wire
    // locality property the paper's DMX design exploits.
    StarFixture f(3);
    const std::uint64_t bytes = 4 * mib;
    Tick p2p_done = 0;
    f.fabric.startFlow(f.eps[2], f.rc, 64 * mib, [] {});
    f.fabric.startFlow(f.eps[0], f.eps[1], bytes,
                       [&] { p2p_done = f.eq.now(); });
    f.eq.run();

    const double bw = linkBandwidth(Generation::Gen3, 16);
    const double expect_sec = static_cast<double>(bytes) / bw;
    const Tick overhead = f.fabric.params().dma_setup +
                          f.fabric.params().switch_latency;
    EXPECT_NEAR(ticksToSeconds(p2p_done - overhead), expect_sec,
                expect_sec * 0.02);
}

TEST(FabricFlow, MaxMinUnevenShares)
{
    // Three flows to RC plus one p2p flow. The p2p flow is only limited
    // by its x16 links; the three upstream flows each get 1/3 of x8.
    StarFixture f(4);
    std::vector<Tick> done(4, 0);
    const std::uint64_t bytes = 2 * mib;
    for (int i = 0; i < 3; ++i) {
        f.fabric.startFlow(f.eps[i], f.rc, bytes,
                           [&done, i, &f] { done[i] = f.eq.now(); });
    }
    f.fabric.startFlow(f.eps[3], f.eps[0], bytes,
                       [&done, &f] { done[3] = f.eq.now(); });
    f.eq.run();

    // p2p completes much earlier than the upstream-contended flows.
    EXPECT_LT(done[3] * 3, done[0]);
    // The three contended flows finish at ~the same time.
    EXPECT_NEAR(static_cast<double>(done[0]),
                static_cast<double>(done[2]),
                static_cast<double>(done[0]) * 0.02);
}

TEST(FabricFlow, CallbackChainsNewFlow)
{
    // Completion callbacks can start follow-on flows (used by the DMX
    // pipeline: accel->DRX then DRX->accel).
    StarFixture f(2);
    Tick second_done = 0;
    f.fabric.startFlow(f.eps[0], f.eps[1], mib, [&] {
        f.fabric.startFlow(f.eps[1], f.eps[0], mib,
                           [&] { second_done = f.eq.now(); });
    });
    f.eq.run();
    EXPECT_GT(second_done, 0u);
    EXPECT_EQ(f.fabric.activeFlows(), 0u);
}

TEST(FabricFlow, StatsAccumulate)
{
    StarFixture f(1);
    f.fabric.startFlow(f.eps[0], f.rc, mib, [] {});
    f.eq.run();
    EXPECT_EQ(f.fabric.totalBytes(), mib);
    EXPECT_EQ(f.fabric.switchTraversals(), 1u);
    // Both links on the path saw ~the full payload.
    std::uint64_t max_link_bytes = 0;
    for (const auto &ls : f.fabric.linkStats())
        max_link_bytes = std::max(max_link_bytes, ls.bytes);
    EXPECT_NEAR(static_cast<double>(max_link_bytes),
                static_cast<double>(mib), static_cast<double>(mib) * 0.01);
}

TEST(FabricFlow, RejectsBadFlows)
{
    StarFixture f(1);
    EXPECT_THROW(f.fabric.startFlow(f.eps[0], f.eps[0], 100, [] {}),
                 std::runtime_error);
    EXPECT_THROW(f.fabric.startFlow(f.eps[0], 77, 100, [] {}),
                 std::runtime_error);
}

TEST(FabricFlow, ManyConcurrentFlowsDrain)
{
    StarFixture f(8);
    int completions = 0;
    for (int round = 0; round < 4; ++round) {
        for (std::size_t i = 0; i < f.eps.size(); ++i) {
            f.fabric.startFlow(f.eps[i], f.eps[(i + 1) % f.eps.size()],
                               256 * kib, [&] { ++completions; });
        }
    }
    f.eq.run();
    EXPECT_EQ(completions, 32);
    EXPECT_EQ(f.fabric.activeFlows(), 0u);
}
