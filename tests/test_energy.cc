/**
 * @file
 * Coverage for the energy model (sys/energy.cc): hand-computed golden
 * values against the calibration constants, the accelerator idle-time
 * clamp, zero-input and component-additivity properties.
 */

#include <gtest/gtest.h>

#include "sys/calibration.hh"
#include "sys/energy.hh"

using namespace dmx;
using namespace dmx::sys;

// Hand-computed against calibration.hh:
//   host  = 1.5 cs x 9 W + 2 s x 35 W             = 83.5 J
//   accel = 3 s x 25 W + (2 s x 2 - 3 s) x 8 W    = 83 J
//   drx   = 0.5 s x 4 W + 2 s x 3 units x 5 W     = 32 J
//   pcie  = 8e9 B x 1.25e-9 J/B                   = 10 J
TEST(Energy, GoldenHandComputedReport)
{
    EnergyInputs in;
    in.makespan_seconds = 2;
    in.host_busy_core_seconds = 1.5;
    in.accel_busy_seconds = 3;
    in.accel_count = 2;
    in.accel_active_watts = 25;
    in.accel_idle_watts = 8;
    in.drx_busy_seconds = 0.5;
    in.drx_count = 3;
    in.drx_static_watts_per_unit = watts_bitw_static;
    in.pcie_bytes = 8'000'000'000ull;

    const EnergyReport rep = computeEnergy(in);
    EXPECT_DOUBLE_EQ(rep.host_joules, 83.5);
    EXPECT_DOUBLE_EQ(rep.accel_joules, 83.0);
    EXPECT_DOUBLE_EQ(rep.drx_joules, 32.0);
    EXPECT_DOUBLE_EQ(rep.pcie_joules, 10.0);
    EXPECT_DOUBLE_EQ(rep.total(), 208.5);
}

TEST(Energy, ZeroInputsZeroEnergy)
{
    const EnergyReport rep = computeEnergy(EnergyInputs{});
    EXPECT_DOUBLE_EQ(rep.host_joules, 0.0);
    EXPECT_DOUBLE_EQ(rep.accel_joules, 0.0);
    EXPECT_DOUBLE_EQ(rep.drx_joules, 0.0);
    EXPECT_DOUBLE_EQ(rep.pcie_joules, 0.0);
    EXPECT_DOUBLE_EQ(rep.total(), 0.0);
}

TEST(Energy, AccelIdleTimeClampsAtZero)
{
    // Overlapped accelerator busy time can exceed makespan x count
    // (the inputs are summed over devices); negative idle time must
    // not subtract energy.
    EnergyInputs in;
    in.makespan_seconds = 1;
    in.accel_busy_seconds = 3; // > makespan x count = 2
    in.accel_count = 2;
    in.accel_active_watts = 10;
    in.accel_idle_watts = 100; // would dominate if the clamp broke
    const EnergyReport rep = computeEnergy(in);
    EXPECT_DOUBLE_EQ(rep.accel_joules, 30.0);
}

TEST(Energy, PcieEnergyIsLinearInBytes)
{
    EnergyInputs in;
    in.pcie_bytes = 1'000'000'000ull;
    const double one = computeEnergy(in).pcie_joules;
    EXPECT_DOUBLE_EQ(one, 1e9 * joules_per_pcie_byte);
    in.pcie_bytes *= 2;
    EXPECT_DOUBLE_EQ(computeEnergy(in).pcie_joules, 2 * one);
}

TEST(Energy, StaticDrxPowerScalesWithUnitCountAndMakespan)
{
    // The per-unit static term is what separates Bump-in-the-Wire
    // (one DRX per accelerator) from Standalone (shared cards) at
    // scale - it must scale with both unit count and makespan.
    EnergyInputs in;
    in.makespan_seconds = 2;
    in.drx_count = 4;
    in.drx_static_watts_per_unit = watts_standalone_static;
    const double four = computeEnergy(in).drx_joules;
    EXPECT_DOUBLE_EQ(four, 2.0 * 4 * watts_standalone_static);
    in.drx_count = 8;
    EXPECT_DOUBLE_EQ(computeEnergy(in).drx_joules, 2 * four);
    in.makespan_seconds = 4;
    EXPECT_DOUBLE_EQ(computeEnergy(in).drx_joules, 4 * four);
}

TEST(Energy, ComponentsAreIndependent)
{
    // host-only inputs leave every other component at zero.
    EnergyInputs in;
    in.host_busy_core_seconds = 2;
    const EnergyReport rep = computeEnergy(in);
    EXPECT_DOUBLE_EQ(rep.host_joules, 2 * watts_per_busy_core);
    EXPECT_DOUBLE_EQ(rep.accel_joules, 0.0);
    EXPECT_DOUBLE_EQ(rep.drx_joules, 0.0);
    EXPECT_DOUBLE_EQ(rep.pcie_joules, 0.0);
}
