/**
 * @file
 * Unit tests for the host CPU model: roofline timing, the malleable
 * core pool, and the top-down characterization (Figure 5 machinery).
 */

#include <gtest/gtest.h>

#include "apps/benchmarks.hh"
#include "cpu/core_pool.hh"
#include "cpu/host_model.hh"
#include "cpu/topdown.hh"
#include "restructure/catalog.hh"

using namespace dmx;
using namespace dmx::cpu;

TEST(HostModel, ComputeBoundKernel)
{
    HostParams host;
    kernels::OpCount ops;
    ops.flops = 1'000'000'000; // 1 Gflop, tiny traffic
    ops.bytes_read = 1024;
    const double sec = kernelCoreSeconds(ops, host);
    EXPECT_NEAR(sec, 1e9 / (host.flops_per_cycle * host.freq_hz), 1e-6);
}

TEST(HostModel, MemoryBoundRestructure)
{
    HostParams host;
    kernels::OpCount ops;
    ops.flops = 1000; // negligible compute
    ops.bytes_read = 8 * mib;
    ops.bytes_written = 8 * mib;
    const double sec = restructureCoreSeconds(ops, host);
    const double expect = static_cast<double>(16 * mib) *
                              host.thrash_factor /
                              host.core_mem_bytes_per_sec +
                          host.restructure_spawn_core_seconds;
    EXPECT_NEAR(sec, expect, expect * 1e-9);
}

TEST(HostModel, ThrashFactorOnlyAppliesToRestructuring)
{
    HostParams host;
    kernels::OpCount ops;
    ops.bytes_read = 16 * mib;
    EXPECT_GT(restructureCoreSeconds(ops, host),
              kernelCoreSeconds(ops, host));
}

TEST(CorePool, SingleJobRunsAtCap)
{
    sim::EventQueue eq;
    CorePool pool(eq, "pool", 16, 4);
    Tick done_at = 0;
    pool.submit(4.0, [&] { done_at = eq.now(); }); // 4 core-seconds
    eq.run();
    // Capped at 4 cores -> 1 second wall.
    EXPECT_NEAR(ticksToSeconds(done_at), 1.0, 0.01);
    EXPECT_NEAR(pool.busyCoreSeconds(), 4.0, 0.01);
}

TEST(CorePool, ManyJobsShareCores)
{
    sim::EventQueue eq;
    CorePool pool(eq, "pool", 16, 4);
    // 16 jobs of 1 core-second each: 16 core-seconds over 16 cores
    // (each job gets 1 core) -> all finish at ~1 s.
    std::vector<Tick> done(16, 0);
    for (int i = 0; i < 16; ++i)
        pool.submit(1.0, [&done, i, &eq] { done[static_cast<std::size_t>(
            i)] = eq.now(); });
    eq.run();
    for (Tick t : done)
        EXPECT_NEAR(ticksToSeconds(t), 1.0, 0.02);
}

TEST(CorePool, OversubscriptionSlowsEveryone)
{
    // 32 jobs on 16 cores: fair share 0.5 cores -> 2 s for 1 core-sec.
    sim::EventQueue eq;
    CorePool pool(eq, "pool", 16, 4);
    Tick last = 0;
    for (int i = 0; i < 32; ++i)
        pool.submit(1.0, [&] { last = std::max(last, eq.now()); });
    eq.run();
    EXPECT_NEAR(ticksToSeconds(last), 2.0, 0.05);
    EXPECT_EQ(pool.completedJobs(), 32u);
}

TEST(CorePool, LateArrivalsInterleave)
{
    sim::EventQueue eq;
    CorePool pool(eq, "pool", 4, 4);
    Tick first_done = 0, second_done = 0;
    pool.submit(4.0, [&] { first_done = eq.now(); }); // 1 s alone
    eq.schedule(secondsToTicks(0.5), [&] {
        pool.submit(2.0, [&] { second_done = eq.now(); });
    });
    eq.run();
    // After 0.5 s the pool splits 4 cores between two jobs (2 each).
    // First job: 2 of 4 core-sec left at t=0.5, rate 2 -> done at 1.5.
    EXPECT_NEAR(ticksToSeconds(first_done), 1.5, 0.05);
    EXPECT_NEAR(ticksToSeconds(second_done), 1.5, 0.05);
}

TEST(CorePool, ZeroWorkCompletesImmediately)
{
    sim::EventQueue eq;
    CorePool pool(eq, "pool", 2, 2);
    bool ran = false;
    pool.submit(0.0, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_LT(eq.now(), tick_per_us);
}

TEST(TopDown, RestructuringIsBackendMemoryBound)
{
    // Paper Fig. 5: backend 53%-77.6%, mostly memory; the streaming
    // batches give 50-215 L1D MPKI and tiny L1I MPKI.
    const auto kernel = restructure::melSpectrogram(64, 513, 128);
    restructure::Bytes input(kernel.input.bytes());
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<std::uint8_t>(i * 13);
    const TopDownReport rep = characterize(kernel, input);

    EXPECT_GT(rep.backend(), 0.45);
    EXPECT_LT(rep.backend(), 0.85);
    EXPECT_GT(rep.backend_memory, rep.backend_core);
    EXPECT_LT(rep.frontend, 0.15);
    EXPECT_LT(rep.bad_speculation, 0.13);
    const double sum = rep.retiring + rep.frontend +
                       rep.bad_speculation + rep.backend_core +
                       rep.backend_memory;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TopDown, LowInstructionCacheMpki)
{
    const auto kernel =
        restructure::textRecordRestructure(64 * 1024, 256, 320);
    restructure::Bytes input(kernel.input.bytes(), 'x');
    const TopDownReport rep = characterize(kernel, input);
    EXPECT_LT(rep.mpki.l1i, 5.0);  // tiny loop bodies
    // Byte-granular text restructuring still streams (one miss per
    // line), though its per-instruction MPKI is below the f32 kernels'.
    EXPECT_GT(rep.mpki.l1d, 2.0);
}

TEST(TopDown, BranchRateRaisesBadSpeculation)
{
    const auto kernel = restructure::dbColumnarize(4096);
    restructure::Bytes input(kernel.input.bytes(), 1);
    TopDownParams calm, branchy;
    branchy.branch_rate = 0.25;
    const auto a = characterize(kernel, input, calm);
    const auto b = characterize(kernel, input, branchy);
    EXPECT_GT(b.bad_speculation, a.bad_speculation * 2);
}

TEST(TopDown, SuiteMatchesPaperEnvelope)
{
    // Every Figure-5 restructuring op must land in the paper's bands.
    for (const auto &nr : apps::restructureSuite(64)) {
        cpu::TopDownParams params;
        params.branch_rate = nr.branch_rate;
        const TopDownReport rep =
            characterize(nr.kernel, nr.input, params);
        EXPECT_GT(rep.backend(), 0.40) << nr.app;
        EXPECT_LT(rep.frontend, 0.20) << nr.app;
        EXPECT_LT(rep.bad_speculation, 0.15) << nr.app;
        EXPECT_LT(rep.mpki.l1i, 8.0) << nr.app;
    }
}
