/**
 * @file
 * The parallel scenario engine's contract, end to end:
 *
 *  - ThreadPool: inline 0-worker mode, completion draining, stealing
 *    bookkeeping;
 *  - jobs resolution: --jobs flag parsing and the DMX_JOBS fallback;
 *  - Rng splittable streams: stream 0 is the legacy generator,
 *    sibling streams of one seed are uncorrelated;
 *  - ScenarioRunner ordering: results commit in submission order for
 *    any (workers, scenarios, duration) combination, including the
 *    0-worker and 0-scenario edges, and exceptions surface at the
 *    right slot;
 *  - the differential harness: a matrix of random chain configs
 *    (half under an installed FaultPlan) must produce byte-identical
 *    RunStats ticks, JSON metric dumps and trace-category totals at
 *    --jobs 1 and --jobs 8.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <thread>

#include "common/random.hh"
#include "common/stats.hh"
#include "exec/scenario.hh"
#include "exec/thread_pool.hh"
#include "fault/fault.hh"
#include "sys/multi_tenant.hh"
#include "sys/system.hh"
#include "trace/trace.hh"
#include "util_random_chain.hh"

using namespace dmx;

// ------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    exec::ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 0u);
    int ran_on_caller = 0;
    const std::thread::id me = std::this_thread::get_id();
    pool.submit([&] {
        if (std::this_thread::get_id() == me)
            ++ran_on_caller;
    });
    // Inline mode: the task already ran, on this thread.
    EXPECT_EQ(ran_on_caller, 1);
    EXPECT_EQ(pool.executedCount(), 1u);
    EXPECT_EQ(pool.stolenCount(), 0u);
}

TEST(ThreadPool, WaitDrainsEverySubmittedTask)
{
    exec::ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 200);
    EXPECT_EQ(pool.executedCount(), 200u);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately)
{
    exec::ThreadPool pool(2);
    pool.wait();
    EXPECT_EQ(pool.executedCount(), 0u);
}

TEST(ThreadPool, UnevenTasksAllComplete)
{
    // A few long tasks at the front of some deques must not strand the
    // short ones queued behind them (that is what stealing is for).
    exec::ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&done, i] {
            if (i % 16 == 0)
                std::this_thread::sleep_for(std::chrono::milliseconds(20));
            done.fetch_add(1);
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 64);
}

// ------------------------------------------------------------------
// Jobs resolution

TEST(ResolveJobs, ExplicitRequestWins)
{
    setenv("DMX_JOBS", "3", 1);
    EXPECT_EQ(exec::resolveJobs(5), 5u);
    unsetenv("DMX_JOBS");
}

TEST(ResolveJobs, EnvironmentFallback)
{
    setenv("DMX_JOBS", "3", 1);
    EXPECT_EQ(exec::resolveJobs(0), 3u);
    unsetenv("DMX_JOBS");
}

TEST(ResolveJobs, DefaultsToAtLeastOne)
{
    unsetenv("DMX_JOBS");
    EXPECT_GE(exec::resolveJobs(0), 1u);
}

TEST(ParseJobsFlag, FindsFlagAnywhere)
{
    const char *argv[] = {"prog", "--json", "out.json", "--jobs", "7"};
    EXPECT_EQ(exec::parseJobsFlag(5, const_cast<char **>(argv)), 7u);
}

TEST(ParseJobsFlag, AbsentMeansZero)
{
    const char *argv[] = {"prog", "--json", "out.json"};
    EXPECT_EQ(exec::parseJobsFlag(3, const_cast<char **>(argv)), 0u);
}

// ------------------------------------------------------------------
// Splittable random streams

TEST(RngStreams, StreamZeroIsTheLegacyGenerator)
{
    Rng legacy(42);
    Rng stream0(42, 0);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(legacy.below(1u << 30), stream0.below(1u << 30));
}

TEST(RngStreams, SameStreamIsReproducible)
{
    Rng a(7, 5), b(7, 5);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.below(1u << 30), b.below(1u << 30));
}

TEST(RngStreams, SiblingStreamsNeverCorrelate)
{
    // Two scenarios sharing a seed but differing stream ids: their
    // draws must look independent, not shifted copies of each other.
    constexpr int N = 4096;
    Rng s1(1234, 1), s2(1234, 2);

    int matches = 0;
    double sum1 = 0, sum2 = 0, sum11 = 0, sum22 = 0, sum12 = 0;
    Rng u1(1234, 1), u2(1234, 2);
    for (int i = 0; i < N; ++i) {
        if (s1.below(16) == s2.below(16))
            ++matches;
        const double x = u1.uniform(0, 1);
        const double y = u2.uniform(0, 1);
        sum1 += x;
        sum2 += y;
        sum11 += x * x;
        sum22 += y * y;
        sum12 += x * y;
    }
    // Independent 4-bit draws match ~1/16 of the time; a duplicated or
    // lock-stepped stream would match always.
    EXPECT_LT(static_cast<double>(matches) / N, 0.25);
    EXPECT_GT(matches, 0);

    // Pearson correlation of the uniform draws stays near zero.
    const double cov = sum12 / N - (sum1 / N) * (sum2 / N);
    const double var1 = sum11 / N - (sum1 / N) * (sum1 / N);
    const double var2 = sum22 / N - (sum2 / N) * (sum2 / N);
    const double r = cov / std::sqrt(var1 * var2);
    EXPECT_LT(std::abs(r), 0.1);
}

TEST(RngStreams, DistinctStreamsDiffer)
{
    for (std::uint64_t s = 1; s < 16; ++s) {
        Rng a(99, s), b(99, s + 1);
        bool any_diff = false;
        for (int i = 0; i < 16 && !any_diff; ++i)
            any_diff = a.below(1u << 30) != b.below(1u << 30);
        EXPECT_TRUE(any_diff) << "streams " << s << " and " << s + 1;
    }
}

// ------------------------------------------------------------------
// ScenarioRunner ordering

TEST(ScenarioRunner, ResultOrderEqualsSubmissionOrderUnderRandomLoad)
{
    // Property: for randomized worker counts, scenario counts and
    // per-scenario durations, map()[i] belongs to scenario i and the
    // reducer sees indices strictly in submission order.
    Rng rng(2026);
    for (int round = 0; round < 24; ++round) {
        const unsigned workers = static_cast<unsigned>(rng.below(9));
        const std::size_t n = rng.below(41);
        const std::uint64_t jitter_us = 20 + rng.below(400);

        exec::ScenarioRunner runner(workers == 0 ? 1 : workers);
        std::vector<std::size_t> reduce_order;
        runner.mapReduce<std::size_t>(
            n,
            [jitter_us](exec::ScenarioContext &ctx, std::size_t i) {
                // Random per-scenario duration, drawn from the
                // scenario's own stream so the test itself is
                // jobs-invariant.
                std::this_thread::sleep_for(std::chrono::microseconds(
                    ctx.rng().below(jitter_us)));
                return i;
            },
            [&reduce_order](std::size_t i, std::size_t v) {
                EXPECT_EQ(i, v);
                reduce_order.push_back(i);
            });
        ASSERT_EQ(reduce_order.size(), n) << "round " << round;
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(reduce_order[i], i);
    }
}

TEST(ScenarioRunner, ZeroScenariosIsANoOp)
{
    exec::ScenarioRunner serial(1), parallel(8);
    int reduced = 0;
    serial.mapReduce<int>(
        0, [](exec::ScenarioContext &, std::size_t) { return 0; },
        [&reduced](std::size_t, int) { ++reduced; });
    parallel.mapReduce<int>(
        0, [](exec::ScenarioContext &, std::size_t) { return 0; },
        [&reduced](std::size_t, int) { ++reduced; });
    EXPECT_EQ(reduced, 0);
    EXPECT_TRUE(serial.map<int>(0, [](exec::ScenarioContext &,
                                      std::size_t) { return 0; })
                    .empty());
}

TEST(ScenarioRunner, SerialModeRunsOnTheCaller)
{
    exec::ScenarioRunner runner(1);
    EXPECT_EQ(runner.jobs(), 1u);
    const std::thread::id me = std::this_thread::get_id();
    const auto ids = runner.map<bool>(
        4, [me](exec::ScenarioContext &, std::size_t) {
            return std::this_thread::get_id() == me;
        });
    for (bool on_caller : ids)
        EXPECT_TRUE(on_caller);
}

TEST(ScenarioRunner, ExceptionSurfacesAtItsSubmissionSlot)
{
    for (unsigned jobs : {1u, 8u}) {
        exec::ScenarioRunner runner(jobs);
        std::vector<std::size_t> reduced;
        try {
            runner.mapReduce<std::size_t>(
                8,
                [](exec::ScenarioContext &, std::size_t i) -> std::size_t {
                    if (i == 3)
                        throw std::runtime_error("scenario 3 failed");
                    return i;
                },
                [&reduced](std::size_t i, std::size_t) {
                    reduced.push_back(i);
                });
            FAIL() << "expected the scenario error to propagate";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "scenario 3 failed");
        }
        // Every scenario before the failing slot committed; none after.
        ASSERT_EQ(reduced.size(), 3u) << "jobs=" << jobs;
        for (std::size_t i = 0; i < reduced.size(); ++i)
            EXPECT_EQ(reduced[i], i);
    }
}

TEST(ScenarioRunner, ScenarioContextsAreJobsInvariant)
{
    // The context's stream id is the submission index, so the draws a
    // scenario sees cannot depend on the worker count.
    auto draws = [](unsigned jobs) {
        exec::ScenarioRunner runner(jobs, 77);
        return runner.map<std::uint64_t>(
            16, [](exec::ScenarioContext &ctx, std::size_t) {
                std::uint64_t acc = 0;
                for (int i = 0; i < 8; ++i)
                    acc = acc * 31 + ctx.rng().below(1u << 20);
                return acc;
            });
    };
    EXPECT_EQ(draws(1), draws(8));
}

// ------------------------------------------------------------------
// Differential harness: serial vs parallel simulation sweeps

namespace
{

/** Everything a scenario's execution leaves behind, serialized. */
struct DiffResult
{
    sys::RunStats stats;
    std::string stats_json; ///< per-scenario StatGroup JSON dump
    std::string trace_json; ///< per-scenario Chrome trace export
    std::array<trace::CategoryTotal,
               static_cast<std::size_t>(trace::Category::NumCategories)>
        categories;
};

/**
 * One differential scenario: a random chain config drawn from the
 * scenario's own stream, odd indices running under a per-scenario
 * FaultPlan, recorded into the scenario's private trace and stat sinks.
 */
DiffResult
runDiffScenario(exec::ScenarioContext &ctx, std::size_t i)
{
    sys::SystemConfig cfg = testutil::randomSystemConfig(ctx.rng());

    std::optional<fault::FaultPlan> plan;
    if (i % 2 == 1) {
        fault::FaultSpec spec;
        spec.seed = ctx.seed() + i;
        spec.flow_stall_prob = 0.05;
        spec.flow_corrupt_prob = 0.03;
        spec.irq_drop_prob = 0.05;
        plan.emplace(spec);
        cfg.fault_plan = &*plan;
    }

    DiffResult r;
    r.stats = sys::simulateSystem(cfg, {testutil::randomChainApp(i)});

    stats::Scalar kernel(&ctx.stats(), "kernel_ticks",
                         "total kernel-phase ticks");
    stats::Scalar restructure(&ctx.stats(), "restructure_ticks",
                              "total restructure-phase ticks");
    stats::Scalar movement(&ctx.stats(), "movement_ticks",
                           "total movement-phase ticks");
    stats::Scalar makespan(&ctx.stats(), "makespan_ticks",
                           "simulated makespan");
    stats::Scalar retries(&ctx.stats(), "flow_retries",
                          "link-level retransmissions");
    kernel.set(static_cast<double>(r.stats.kernel_ticks));
    restructure.set(static_cast<double>(r.stats.restructure_ticks));
    movement.set(static_cast<double>(r.stats.movement_ticks));
    makespan.set(static_cast<double>(r.stats.makespan_ticks));
    retries.set(static_cast<double>(r.stats.flow_retries));
    std::ostringstream sj;
    ctx.stats().dumpAllJson(sj);
    r.stats_json = sj.str();

    std::ostringstream tj;
    ctx.trace().exportChromeJson(tj);
    r.trace_json = tj.str();
    r.categories = ctx.trace().breakdown();
    return r;
}

} // namespace

TEST(Differential, SerialAndParallelSweepsAreByteIdentical)
{
    constexpr std::size_t kScenarios = 12;

    exec::ScenarioRunner serial(1);
    exec::ScenarioRunner parallel(8);
    const auto a = serial.map<DiffResult>(kScenarios, runDiffScenario);
    const auto b = parallel.map<DiffResult>(kScenarios, runDiffScenario);
    ASSERT_EQ(a.size(), b.size());

    std::uint64_t faults_seen = 0;

    for (std::size_t i = 0; i < kScenarios; ++i) {
        SCOPED_TRACE("scenario " + std::to_string(i));
        // Integer-tick results are byte-identical.
        EXPECT_EQ(a[i].stats.kernel_ticks, b[i].stats.kernel_ticks);
        EXPECT_EQ(a[i].stats.restructure_ticks,
                  b[i].stats.restructure_ticks);
        EXPECT_EQ(a[i].stats.movement_ticks, b[i].stats.movement_ticks);
        EXPECT_EQ(a[i].stats.makespan_ticks, b[i].stats.makespan_ticks);
        EXPECT_EQ(a[i].stats.flow_retries, b[i].stats.flow_retries);
        EXPECT_EQ(a[i].stats.dropped_irqs, b[i].stats.dropped_irqs);
        EXPECT_EQ(a[i].stats.interrupts, b[i].stats.interrupts);
        EXPECT_EQ(a[i].stats.pcie_bytes, b[i].stats.pcie_bytes);
        // Floating-point aggregates come out of the same deterministic
        // arithmetic, so they are equal to the last bit too.
        EXPECT_EQ(a[i].stats.avg_latency_ms, b[i].stats.avg_latency_ms);
        EXPECT_EQ(a[i].stats.per_app_latency_ms,
                  b[i].stats.per_app_latency_ms);

        // JSON metric dumps are byte-identical strings.
        EXPECT_EQ(a[i].stats_json, b[i].stats_json);
        // Traces: record-for-record identical exports and category
        // totals.
        EXPECT_EQ(a[i].trace_json, b[i].trace_json);
        for (std::size_t c = 0; c < a[i].categories.size(); ++c) {
            EXPECT_EQ(a[i].categories[c].ticks, b[i].categories[c].ticks);
            EXPECT_EQ(a[i].categories[c].spans, b[i].categories[c].spans);
        }
        if (i % 2 == 1)
            faults_seen +=
                a[i].stats.flow_retries + a[i].stats.dropped_irqs;
    }
    // The fault-plan half of the matrix really exercised the recovery
    // path (individual scenarios may draw no faults at these
    // probabilities, but the set cannot).
    EXPECT_GT(faults_seen, 0u);
}

TEST(Differential, RepeatedParallelSweepsAreStable)
{
    exec::ScenarioRunner p1(8), p2(8);
    const auto a = p1.map<DiffResult>(6, runDiffScenario);
    const auto b = p2.map<DiffResult>(6, runDiffScenario);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].stats.makespan_ticks, b[i].stats.makespan_ticks);
        EXPECT_EQ(a[i].trace_json, b[i].trace_json);
        EXPECT_EQ(a[i].stats_json, b[i].stats_json);
    }
}

// ------------------------------------------------------------------
// Multi-tenant stress mode

TEST(MultiTenant, DeterministicAndShapedPerTenant)
{
    sys::MultiTenantConfig cfg;
    cfg.tenants = 6;
    std::vector<sys::AppModel> mix;
    for (std::uint64_t s = 0; s < 3; ++s)
        mix.push_back(testutil::randomChainApp(s));

    const sys::MultiTenantStats a = sys::simulateMultiTenant(cfg, mix);
    const sys::MultiTenantStats b = sys::simulateMultiTenant(cfg, mix);

    ASSERT_EQ(a.tenants.size(), cfg.tenants);
    EXPECT_EQ(a.aggregate.makespan_ticks, b.aggregate.makespan_ticks);
    EXPECT_EQ(a.fairness, b.fairness);
    EXPECT_GT(a.fairness, 0.0);
    EXPECT_LE(a.fairness, 1.0 + 1e-12);
    for (unsigned t = 0; t < cfg.tenants; ++t) {
        const sys::TenantStats &ts = a.tenants[t];
        EXPECT_EQ(ts.app_name, mix[t % mix.size()].name);
        EXPECT_GT(ts.latency_ms, 0.0);
        EXPECT_GT(ts.solo_latency_ms, 0.0);
        // Contention cannot materially help: the shared run is at
        // worst a sliver faster than running alone (batching effects
        // in the driver model can shave a fraction of a percent).
        EXPECT_GE(ts.slowdown(), 0.99);
        EXPECT_GT(ts.throughput_rps, 0.0);
    }
}

TEST(MultiTenant, SkipSoloBaselineZeroesSlowdowns)
{
    sys::MultiTenantConfig cfg;
    cfg.tenants = 3;
    cfg.skip_solo_baseline = true;
    const sys::MultiTenantStats mt =
        sys::simulateMultiTenant(cfg, {testutil::randomChainApp(1)});
    for (const sys::TenantStats &ts : mt.tenants) {
        EXPECT_EQ(ts.solo_latency_ms, 0.0);
        EXPECT_EQ(ts.slowdown(), 0.0);
    }
    EXPECT_EQ(mt.worstSlowdown(), 0.0);
}

TEST(MultiTenant, RejectsEmptyConfigurations)
{
    sys::MultiTenantConfig cfg;
    EXPECT_THROW(sys::simulateMultiTenant(cfg, {}), std::runtime_error);
    cfg.tenants = 0;
    EXPECT_THROW(
        sys::simulateMultiTenant(cfg, {testutil::randomChainApp(0)}),
        std::runtime_error);
}

TEST(MultiTenant, StressPointsAreJobsInvariantThroughTheRunner)
{
    auto sweep = [](unsigned jobs) {
        exec::ScenarioRunner runner(jobs);
        return runner.map<std::uint64_t>(
            4, [](exec::ScenarioContext &, std::size_t i) {
                sys::MultiTenantConfig cfg;
                cfg.tenants = 2 + static_cast<unsigned>(i) * 2;
                cfg.skip_solo_baseline = true;
                const sys::MultiTenantStats mt = sys::simulateMultiTenant(
                    cfg, {testutil::randomChainApp(i)});
                return static_cast<std::uint64_t>(
                    mt.aggregate.makespan_ticks);
            });
    };
    EXPECT_EQ(sweep(1), sweep(8));
}
