/**
 * @file
 * Tests of the simulated-time tracing layer: TraceBuffer mechanics,
 * session installation, the determinism (golden-trace) contract, the
 * Chrome trace_event export, and the exactness contract between trace
 * category totals and RunStats tick fields.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sys/system.hh"
#include "trace/trace.hh"

using namespace dmx;
using namespace dmx::trace;

namespace
{

/** Small two-kernel app, cheap enough for many repeated runs. */
sys::AppModel
tinyApp()
{
    sys::AppModel app;
    app.name = "tiny";
    app.input_bytes = 4 * mib;

    sys::KernelTiming k1;
    k1.name = "k1";
    k1.cpu_core_seconds = 0.004;
    k1.accel_cycles = 250'000;
    k1.accel_freq_hz = 250e6;
    k1.out_bytes = 8 * mib;
    app.kernels.push_back(k1);

    sys::KernelTiming k2 = k1;
    k2.name = "k2";
    k2.out_bytes = 1 * mib;
    app.kernels.push_back(k2);

    sys::MotionTiming m;
    m.name = "restructure";
    m.cpu_core_seconds = 0.012;
    m.drx_cycles = 400'000;
    m.in_bytes = 8 * mib;
    m.out_bytes = 4 * mib;
    app.motions.push_back(m);
    return app;
}

sys::SystemConfig
smallConfig(sys::Placement p = sys::Placement::BumpInTheWire)
{
    sys::SystemConfig cfg;
    cfg.placement = p;
    cfg.n_apps = 2;
    cfg.requests_per_app = 2;
    return cfg;
}

/** Run the small system with tracing into @p tb. */
sys::RunStats
tracedRun(TraceBuffer &tb, sys::Placement p = sys::Placement::BumpInTheWire)
{
    TraceSession session(tb);
    return sys::simulateSystem(smallConfig(p), {tinyApp()});
}

} // namespace

// ------------------------------------------------- TraceBuffer mechanics

TEST(TraceBuffer, InternReturnsStableIds)
{
    TraceBuffer tb;
    const auto a = tb.intern("alpha");
    const auto b = tb.intern("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(tb.intern("alpha"), a);
    EXPECT_EQ(tb.stringAt(a), "alpha");
    EXPECT_EQ(tb.stringAt(b), "beta");
    EXPECT_THROW(tb.stringAt(999), std::logic_error);
}

TEST(TraceBuffer, SpansAccumulatePerCategory)
{
    TraceBuffer tb;
    tb.span(Category::Kernel, "a", "t0", 100, 300);
    tb.span(Category::Kernel, "b", "t0", 300, 350);
    tb.span(Category::Movement, "c", "t1", 0, 1000, 42);
    EXPECT_EQ(tb.categoryTicks(Category::Kernel), 250u);
    EXPECT_EQ(tb.categoryTicks(Category::Movement), 1000u);
    EXPECT_EQ(tb.categoryTicks(Category::Retry), 0u);
    EXPECT_EQ(tb.maxEnd(), 1000u);

    const auto bd = tb.breakdown();
    EXPECT_EQ(bd[static_cast<std::size_t>(Category::Kernel)].spans, 2u);
    EXPECT_EQ(bd[static_cast<std::size_t>(Category::Movement)].ticks,
              1000u);
    EXPECT_EQ(tb.spans()[2].arg, 42u);
}

TEST(TraceBuffer, NegativeDurationPanics)
{
    TraceBuffer tb;
    EXPECT_THROW(tb.span(Category::Kernel, "bad", "t", 10, 9),
                 std::logic_error);
}

TEST(TraceBuffer, InstantHasZeroDuration)
{
    TraceBuffer tb;
    tb.instant(Category::Driver, "irq", "host", 777);
    ASSERT_EQ(tb.spans().size(), 1u);
    EXPECT_EQ(tb.spans()[0].duration(), 0u);
    EXPECT_EQ(tb.categoryTicks(Category::Driver), 0u);
}

TEST(TraceBuffer, CountersAreCumulative)
{
    TraceBuffer tb;
    tb.count("retries", 10);
    tb.count("retries", 20);
    tb.count("bytes", 5, 128.0);
    EXPECT_DOUBLE_EQ(tb.counterTotal("retries"), 2.0);
    EXPECT_DOUBLE_EQ(tb.counterTotal("bytes"), 128.0);
    EXPECT_DOUBLE_EQ(tb.counterTotal("unseen"), 0.0);
    // Samples record the running total at each event.
    EXPECT_DOUBLE_EQ(tb.counters()[0].value, 1.0);
    EXPECT_DOUBLE_EQ(tb.counters()[1].value, 2.0);
}

TEST(TraceBuffer, ClearEmptiesEverything)
{
    TraceBuffer tb;
    tb.span(Category::Flow, "f", "link", 0, 10);
    tb.count("c", 1);
    EXPECT_FALSE(tb.empty());
    tb.clear();
    EXPECT_TRUE(tb.empty());
    EXPECT_DOUBLE_EQ(tb.counterTotal("c"), 0.0);
    EXPECT_EQ(tb.maxEnd(), 0u);
}

// --------------------------------------------------- session management

TEST(TraceSession, InstallsAndRestoresNesting)
{
    EXPECT_EQ(active(), nullptr);
    TraceBuffer outer, inner;
    {
        TraceSession s1(outer);
        EXPECT_EQ(active(), &outer);
        {
            TraceSession s2(inner);
            EXPECT_EQ(active(), &inner);
        }
        EXPECT_EQ(active(), &outer);
    }
    EXPECT_EQ(active(), nullptr);
}

// ------------------------------------------------------ golden contract

TEST(GoldenTrace, EqualRunsProduceByteIdenticalJson)
{
    TraceBuffer a, b;
    tracedRun(a);
    tracedRun(b);
    ASSERT_FALSE(a.empty());

    std::ostringstream ja, jb;
    a.exportChromeJson(ja);
    b.exportChromeJson(jb);
    EXPECT_EQ(ja.str(), jb.str());

    std::ostringstream sa, sb;
    a.writeSummary(sa);
    b.writeSummary(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(GoldenTrace, SpansAreWellFormed)
{
    TraceBuffer tb;
    const sys::RunStats stats = tracedRun(tb);
    ASSERT_FALSE(tb.spans().empty());
    for (const Span &s : tb.spans()) {
        EXPECT_LE(s.begin, s.end);
        EXPECT_LE(s.end, stats.makespan_ticks);
        EXPECT_LT(s.cat, Category::NumCategories);
        // Interned ids must resolve.
        EXPECT_NO_THROW(tb.stringAt(s.name));
        EXPECT_NO_THROW(tb.stringAt(s.track));
    }
    for (const CounterSample &c : tb.counters())
        EXPECT_NO_THROW(tb.stringAt(c.name));
}

TEST(GoldenTrace, ExportIsChromeTraceEventShaped)
{
    TraceBuffer tb;
    tracedRun(tb);
    std::ostringstream os;
    tb.exportChromeJson(os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
    // Balanced braces is a cheap well-formedness smoke check (no brace
    // characters occur inside the simulator's span/track names).
    const auto count = [&](char c) {
        return std::count(json.begin(), json.end(), c);
    };
    EXPECT_EQ(count('{'), count('}'));
    EXPECT_EQ(count('['), count(']'));
}

// ------------------------------------------- disabled-tracing contract

TEST(DisabledTracing, NoSessionRecordsNothingAndChangesNothing)
{
    ASSERT_EQ(active(), nullptr);

    // Traced reference run.
    TraceBuffer tb;
    const sys::RunStats traced = tracedRun(tb);
    ASSERT_FALSE(tb.empty());

    // Untraced run of the identical system.
    const sys::RunStats plain =
        sys::simulateSystem(smallConfig(), {tinyApp()});

    // Tracing only observes: every statistic matches exactly.
    EXPECT_EQ(plain.makespan_ticks, traced.makespan_ticks);
    EXPECT_EQ(plain.kernel_ticks, traced.kernel_ticks);
    EXPECT_EQ(plain.restructure_ticks, traced.restructure_ticks);
    EXPECT_EQ(plain.movement_ticks, traced.movement_ticks);
    EXPECT_DOUBLE_EQ(plain.avg_latency_ms, traced.avg_latency_ms);
    EXPECT_EQ(plain.interrupts, traced.interrupts);
    EXPECT_EQ(plain.polls, traced.polls);
    EXPECT_EQ(plain.pcie_bytes, traced.pcie_bytes);
}

// ------------------------------------------------- exactness contract

TEST(TraceExactness, CategoryTotalsEqualRunStatsTicks)
{
    for (const sys::Placement p :
         {sys::Placement::MultiAxl, sys::Placement::BumpInTheWire,
          sys::Placement::StandaloneDrx, sys::Placement::PcieIntegrated}) {
        TraceBuffer tb;
        const sys::RunStats stats = tracedRun(tb, p);
        EXPECT_EQ(tb.categoryTicks(Category::Kernel), stats.kernel_ticks)
            << toString(p);
        EXPECT_EQ(tb.categoryTicks(Category::Restructure),
                  stats.restructure_ticks)
            << toString(p);
        EXPECT_EQ(tb.categoryTicks(Category::Movement),
                  stats.movement_ticks)
            << toString(p);
        EXPECT_EQ(tb.maxEnd(), stats.makespan_ticks) << toString(p);
    }
}
