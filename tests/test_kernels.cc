/**
 * @file
 * Unit tests for the functional compute kernels: FFT, SVM, AES-GCM,
 * regex, LZ, hash join, neural networks and the video codec.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/random.hh"
#include "kernels/aes.hh"
#include "kernels/fft.hh"
#include "kernels/hashjoin.hh"
#include "kernels/lz.hh"
#include "kernels/nn.hh"
#include "kernels/regex.hh"
#include "kernels/svm.hh"
#include "kernels/video.hh"

using namespace dmx;
using namespace dmx::kernels;

// ---------------------------------------------------------------- FFT

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    std::vector<Complex> data(8, Complex(0, 0));
    data[0] = Complex(1, 0);
    fft(data);
    for (const Complex &c : data) {
        EXPECT_NEAR(c.real(), 1.0f, 1e-5f);
        EXPECT_NEAR(c.imag(), 0.0f, 1e-5f);
    }
}

TEST(Fft, SingleToneDetected)
{
    constexpr std::size_t n = 64;
    std::vector<Complex> data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = Complex(std::cos(2.0f * std::numbers::pi_v<float> * 5.0f *
                                   static_cast<float>(i) /
                                   static_cast<float>(n)),
                          0.0f);
    fft(data);
    // Energy concentrated at bins 5 and n-5.
    EXPECT_NEAR(std::abs(data[5]), n / 2.0f, 0.01f);
    EXPECT_NEAR(std::abs(data[n - 5]), n / 2.0f, 0.01f);
    EXPECT_LT(std::abs(data[3]), 0.01f);
}

TEST(Fft, ForwardInverseRoundTrip)
{
    Rng rng(42);
    std::vector<Complex> data(128), orig;
    for (auto &c : data)
        c = Complex(static_cast<float>(rng.uniform(-1, 1)),
                    static_cast<float>(rng.uniform(-1, 1)));
    orig = data;
    fft(data, false);
    fft(data, true);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-4f);
        EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-4f);
    }
}

TEST(Fft, RejectsNonPowerOfTwo)
{
    std::vector<Complex> data(12);
    EXPECT_THROW(fft(data), std::runtime_error);
}

TEST(Fft, CountsOps)
{
    std::vector<Complex> data(1024, Complex(1, 0));
    const OpCount ops = fft(data);
    // ~ 16 * (n/2) log2(n) flops.
    EXPECT_NEAR(static_cast<double>(ops.flops), 16.0 * 512 * 10, 1.0);
    EXPECT_EQ(ops.bytes_read, 1024 * sizeof(Complex));
}

TEST(Stft, FrameCountAndShape)
{
    std::vector<float> samples(1024, 0.5f);
    OpCount ops;
    const Stft s = stft(samples, 256, 128, &ops);
    EXPECT_EQ(s.frames, (1024 - 256) / 128 + 1);
    EXPECT_EQ(s.bins, 129u);
    EXPECT_EQ(s.values.size(), s.frames * s.bins);
    EXPECT_GT(ops.flops, 0u);
}

TEST(Stft, ToneAppearsInCorrectBin)
{
    constexpr std::size_t n = 4096, fft_size = 256;
    std::vector<float> samples(n);
    // Tone at bin 16 of a 256-point window.
    for (std::size_t i = 0; i < n; ++i)
        samples[i] = std::sin(2.0f * std::numbers::pi_v<float> * 16.0f *
                              static_cast<float>(i) / fft_size);
    const Stft s = stft(samples, fft_size, 128);
    ASSERT_GT(s.frames, 0u);
    // Find the peak bin of the middle frame.
    const std::size_t f = s.frames / 2;
    std::size_t peak = 0;
    float best = 0;
    for (std::size_t b = 0; b < s.bins; ++b) {
        const float mag = std::abs(s.values[f * s.bins + b]);
        if (mag > best) {
            best = mag;
            peak = b;
        }
    }
    EXPECT_EQ(peak, 16u);
}

TEST(Stft, ShortInputYieldsNoFrames)
{
    std::vector<float> samples(100, 1.0f);
    const Stft s = stft(samples, 256, 128);
    EXPECT_EQ(s.frames, 0u);
}

// ---------------------------------------------------------------- SVM

TEST(Svm, LearnsLinearlySeparableData)
{
    // Two Gaussian-ish blobs in 2-D.
    Rng rng(7);
    std::vector<float> xs;
    std::vector<std::size_t> ys;
    for (int i = 0; i < 200; ++i) {
        const bool cls = i % 2;
        xs.push_back(static_cast<float>(rng.uniform(-1, 1) +
                                        (cls ? 3.0 : -3.0)));
        xs.push_back(static_cast<float>(rng.uniform(-1, 1)));
        ys.push_back(cls);
    }
    LinearSvm svm(2, 2);
    svm.fit(xs, ys, 200);
    std::size_t correct = 0;
    for (int i = 0; i < 200; ++i) {
        const std::vector<float> x{xs[2 * i], xs[2 * i + 1]};
        if (svm.predict(x) == ys[i])
            ++correct;
    }
    EXPECT_GE(correct, 195u);
}

TEST(Svm, BatchMatchesSingle)
{
    LinearSvm svm(3, 4);
    Rng rng(3);
    for (auto &w : svm.weights())
        w = static_cast<float>(rng.uniform(-1, 1));
    std::vector<float> batch;
    for (int i = 0; i < 10 * 3; ++i)
        batch.push_back(static_cast<float>(rng.uniform(-2, 2)));
    const auto preds = svm.predictBatch(batch, 10);
    for (int i = 0; i < 10; ++i) {
        const std::vector<float> x{batch[3 * i], batch[3 * i + 1],
                                   batch[3 * i + 2]};
        EXPECT_EQ(preds[i], svm.predict(x));
    }
}

TEST(Svm, OpCountScalesWithSize)
{
    LinearSvm svm(100, 5);
    OpCount ops;
    svm.predict(std::vector<float>(100, 1.0f), &ops);
    EXPECT_EQ(ops.flops, 2u * 100 * 5);
}

TEST(Svm, RejectsBadShapes)
{
    EXPECT_THROW(LinearSvm(0, 2), std::runtime_error);
    EXPECT_THROW(LinearSvm(4, 1), std::runtime_error);
    LinearSvm svm(4, 2);
    EXPECT_THROW(svm.predict({1.0f}), std::runtime_error);
}

// ---------------------------------------------------------------- AES

TEST(Aes, Fips197KnownAnswer)
{
    AesKey key;
    AesBlock pt;
    for (int i = 0; i < 16; ++i) {
        key[i] = static_cast<std::uint8_t>(i);
        pt[i] = static_cast<std::uint8_t>(i * 0x11);
    }
    const Aes128 aes(key);
    const AesBlock ct = aes.encryptBlock(pt);
    const std::uint8_t expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                     0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                     0x70, 0xb4, 0xc5, 0x5a};
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(ct[i], expect[i]) << "byte " << i;
}

TEST(Aes, GcmNistTestCase2)
{
    // NIST GCM spec test case 2: all-zero key/IV, 16 zero plaintext bytes.
    const AesKey key{};
    const AesBlock iv{};
    const std::vector<std::uint8_t> pt(16, 0);
    const GcmSealed sealed = gcmEncrypt(key, iv, pt);

    const std::uint8_t expect_ct[16] = {0x03, 0x88, 0xda, 0xce, 0x60, 0xb6,
                                        0xa3, 0x92, 0xf3, 0x28, 0xc2, 0xb9,
                                        0x71, 0xb2, 0xfe, 0x78};
    const std::uint8_t expect_tag[16] = {0xab, 0x6e, 0x47, 0xd4, 0x2c, 0xec,
                                         0x13, 0xbd, 0xf5, 0x3a, 0x67, 0xb2,
                                         0x12, 0x57, 0xbd, 0xdf};
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(sealed.ciphertext[static_cast<std::size_t>(i)],
                  expect_ct[i]) << "ct byte " << i;
        EXPECT_EQ(sealed.tag[static_cast<std::size_t>(i)], expect_tag[i])
            << "tag byte " << i;
    }
}

TEST(Aes, GcmRoundTripVariousSizes)
{
    Rng rng(11);
    AesKey key;
    AesBlock iv{};
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.below(256));
    for (int i = 0; i < 12; ++i)
        iv[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(rng.below(256));
    for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 1000u}) {
        std::vector<std::uint8_t> pt(len);
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.below(256));
        const GcmSealed sealed = gcmEncrypt(key, iv, pt);
        bool ok = false;
        const auto out = gcmDecrypt(key, iv, sealed, ok);
        EXPECT_TRUE(ok) << "len " << len;
        EXPECT_EQ(out, pt) << "len " << len;
    }
}

TEST(Aes, GcmDetectsTampering)
{
    const AesKey key{};
    const AesBlock iv{};
    std::vector<std::uint8_t> pt(64, 0xaa);
    GcmSealed sealed = gcmEncrypt(key, iv, pt);
    sealed.ciphertext[5] ^= 1;
    bool ok = true;
    const auto out = gcmDecrypt(key, iv, sealed, ok);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(out.empty());
}

TEST(Aes, CtrIsInvolution)
{
    const AesKey key{1, 2, 3};
    const AesBlock iv{9, 9, 9};
    const Aes128 aes(key);
    std::vector<std::uint8_t> data(100, 0x5c);
    const auto orig = data;
    aes.ctrTransform(data, iv);
    EXPECT_NE(data, orig);
    aes.ctrTransform(data, iv);
    EXPECT_EQ(data, orig);
}

// ---------------------------------------------------------------- Regex

TEST(RegexTest, LiteralAndFullMatch)
{
    Regex re("abc");
    EXPECT_TRUE(re.fullMatch("abc"));
    EXPECT_FALSE(re.fullMatch("ab"));
    EXPECT_FALSE(re.fullMatch("abcd"));
}

TEST(RegexTest, Quantifiers)
{
    EXPECT_TRUE(Regex("ab*c").fullMatch("ac"));
    EXPECT_TRUE(Regex("ab*c").fullMatch("abbbc"));
    EXPECT_FALSE(Regex("ab+c").fullMatch("ac"));
    EXPECT_TRUE(Regex("ab+c").fullMatch("abc"));
    EXPECT_TRUE(Regex("ab?c").fullMatch("ac"));
    EXPECT_TRUE(Regex("ab?c").fullMatch("abc"));
    EXPECT_FALSE(Regex("ab?c").fullMatch("abbc"));
}

TEST(RegexTest, AlternationAndGroups)
{
    Regex re("(cat|dog)s?");
    EXPECT_TRUE(re.fullMatch("cat"));
    EXPECT_TRUE(re.fullMatch("dogs"));
    EXPECT_FALSE(re.fullMatch("cats?"));
    EXPECT_TRUE(Regex("a(bc|de)*f").fullMatch("abcdebcf"));
}

TEST(RegexTest, ClassesAndEscapes)
{
    EXPECT_TRUE(Regex("[a-c]+").fullMatch("abcba"));
    EXPECT_FALSE(Regex("[a-c]+").fullMatch("abd"));
    EXPECT_TRUE(Regex("[^0-9]+").fullMatch("hello"));
    EXPECT_FALSE(Regex("[^0-9]+").fullMatch("h3llo"));
    EXPECT_TRUE(Regex("\\d\\d\\d").fullMatch("123"));
    EXPECT_TRUE(Regex("\\w+").fullMatch("a_9Z"));
    EXPECT_TRUE(Regex("a\\.b").fullMatch("a.b"));
    EXPECT_FALSE(Regex("a\\.b").fullMatch("axb"));
    EXPECT_TRUE(Regex("a.b").fullMatch("axb"));
}

TEST(RegexTest, SsnPattern)
{
    // The PII pattern family used in the Personal Info Redaction app.
    Regex ssn("\\d\\d\\d-\\d\\d-\\d\\d\\d\\d");
    const std::string text = "ssn: 123-45-6789, other: 12-34";
    const auto matches = ssn.findAll(text);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0], (Match{5, 16}));
}

TEST(RegexTest, FindAllNonOverlapping)
{
    Regex re("aa");
    const auto matches = re.findAll("aaaa");
    ASSERT_EQ(matches.size(), 2u);
    EXPECT_EQ(matches[0], (Match{0, 2}));
    EXPECT_EQ(matches[1], (Match{2, 4}));
}

TEST(RegexTest, LongestMatchAtPosition)
{
    Regex re("ab*");
    EXPECT_EQ(re.matchAt("abbbc", 0), 4u);
    EXPECT_EQ(re.matchAt("xabb", 1), 3u);
    EXPECT_EQ(re.matchAt("xbb", 0), SIZE_MAX);
}

TEST(RegexTest, RedactReplacesMatches)
{
    Regex re("\\d+");
    EXPECT_EQ(redact(re, "call 555 or 911!"), "call ### or ###!");
    EXPECT_EQ(redact(re, "no digits"), "no digits");
}

TEST(RegexTest, MalformedPatternsRejected)
{
    EXPECT_THROW(Regex("(abc"), std::runtime_error);
    EXPECT_THROW(Regex("abc)"), std::runtime_error);
    EXPECT_THROW(Regex("[abc"), std::runtime_error);
    EXPECT_THROW(Regex("*a"), std::runtime_error);
    EXPECT_THROW(Regex("a\\"), std::runtime_error);
    EXPECT_THROW(Regex("[z-a]"), std::runtime_error);
}

TEST(RegexTest, EmptyAlternationBranch)
{
    Regex re("a(b|)c");
    EXPECT_TRUE(re.fullMatch("abc"));
    EXPECT_TRUE(re.fullMatch("ac"));
}

// ---------------------------------------------------------------- LZ

TEST(Lz, RoundTripText)
{
    const std::string text =
        "the quick brown fox jumps over the lazy dog. "
        "the quick brown fox jumps over the lazy dog. "
        "the quick brown fox jumps over the lazy dog.";
    Bytes input(text.begin(), text.end());
    const Bytes compressed = lzCompress(input);
    EXPECT_LT(compressed.size(), input.size()); // repetitive -> smaller
    EXPECT_EQ(lzDecompress(compressed), input);
}

TEST(Lz, RoundTripRandomIncompressible)
{
    Rng rng(5);
    Bytes input(4096);
    for (auto &b : input)
        b = static_cast<std::uint8_t>(rng.below(256));
    const Bytes compressed = lzCompress(input);
    EXPECT_EQ(lzDecompress(compressed), input);
}

TEST(Lz, RoundTripEdgeCases)
{
    EXPECT_TRUE(lzDecompress(lzCompress({})).empty());
    const Bytes one{42};
    EXPECT_EQ(lzDecompress(lzCompress(one)), one);
    const Bytes runs(10000, 7); // long single-byte run
    const Bytes compressed = lzCompress(runs);
    EXPECT_LT(compressed.size(), 200u);
    EXPECT_EQ(lzDecompress(compressed), runs);
}

TEST(Lz, OverlappingMatchCopies)
{
    // 'abcabcabc...' forces matches whose source overlaps the output.
    Bytes input;
    for (int i = 0; i < 1000; ++i)
        input.push_back(static_cast<std::uint8_t>('a' + i % 3));
    EXPECT_EQ(lzDecompress(lzCompress(input)), input);
}

TEST(Lz, RejectsCorruptStreams)
{
    EXPECT_THROW(lzDecompress({0x02, 0x01}), std::runtime_error); // bad tag
    EXPECT_THROW(lzDecompress({0x00, 0x05, 'a'}), std::runtime_error);
    EXPECT_THROW(lzDecompress({0x01, 0x08, 0x01, 0x00}),
                 std::runtime_error); // match with empty history
}

// ---------------------------------------------------------------- Join

TEST(HashJoin, BasicInnerJoin)
{
    Table build, probe;
    build.add(1, 100);
    build.add(2, 200);
    build.add(3, 300);
    probe.add(2, -2);
    probe.add(4, -4);
    probe.add(1, -1);
    const auto rows = hashJoin(build, probe);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (JoinedRow{2, 200, -2}));
    EXPECT_EQ(rows[1], (JoinedRow{1, 100, -1}));
}

TEST(HashJoin, DuplicateKeysCrossProduct)
{
    Table build, probe;
    build.add(7, 1);
    build.add(7, 2);
    probe.add(7, 10);
    probe.add(7, 20);
    const auto rows = hashJoin(build, probe);
    EXPECT_EQ(rows.size(), 4u);
}

TEST(HashJoin, EmptySides)
{
    Table build, probe;
    probe.add(1, 1);
    EXPECT_TRUE(hashJoin(build, probe).empty());
    EXPECT_TRUE(hashJoin(probe, build).empty());
}

TEST(HashJoin, LargeRandomAgainstReference)
{
    Rng rng(17);
    Table build, probe;
    for (int i = 0; i < 500; ++i)
        build.add(static_cast<std::int64_t>(rng.below(100)), i);
    for (int i = 0; i < 1000; ++i)
        probe.add(static_cast<std::int64_t>(rng.below(150)), i);
    const auto rows = hashJoin(build, probe);
    // Reference: nested loops.
    std::size_t expect = 0;
    for (std::size_t p = 0; p < probe.rows(); ++p)
        for (std::size_t b = 0; b < build.rows(); ++b)
            if (build.keys[b] == probe.keys[p])
                ++expect;
    EXPECT_EQ(rows.size(), expect);
}

TEST(HashJoin, SerializeRoundTrip)
{
    Table t;
    t.add(-5, 123456789);
    t.add(1ll << 40, -9);
    const Table u = Table::deserialize(t.serialize());
    EXPECT_EQ(u.keys, t.keys);
    EXPECT_EQ(u.payloads, t.payloads);
    EXPECT_THROW(Table::deserialize(std::vector<std::uint8_t>(7)),
                 std::runtime_error);
}

// ---------------------------------------------------------------- NN

TEST(Nn, DenseComputesAffine)
{
    Tensor x({1, 2});
    x.data = {1.0f, 2.0f};
    Tensor w({2, 2});
    w.data = {1.0f, 0.0f, 0.0f, 1.0f}; // identity
    Tensor b({2});
    b.data = {0.5f, -0.5f};
    OpCount ops;
    const Tensor y = dense(x, w, b, &ops);
    EXPECT_FLOAT_EQ(y.data[0], 1.5f);
    EXPECT_FLOAT_EQ(y.data[1], 1.5f);
    EXPECT_EQ(ops.flops, 8u);
}

TEST(Nn, ReluClampsNegatives)
{
    Tensor t({1, 3});
    t.data = {-1.0f, 0.0f, 2.0f};
    reluInPlace(t, nullptr);
    EXPECT_FLOAT_EQ(t.data[0], 0.0f);
    EXPECT_FLOAT_EQ(t.data[2], 2.0f);
}

TEST(Nn, SoftmaxRowsSumToOne)
{
    Tensor t({2, 3});
    t.data = {1.0f, 2.0f, 3.0f, -1.0f, 0.0f, 1.0f};
    softmaxRows(t, nullptr);
    for (std::size_t r = 0; r < 2; ++r) {
        float sum = 0.0f;
        for (std::size_t c = 0; c < 3; ++c)
            sum += t.data[r * 3 + c];
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
    EXPECT_GT(t.data[2], t.data[1]); // monotone
}

TEST(Nn, Conv2dIdentityKernel)
{
    Tensor img({1, 1, 4, 4});
    for (std::size_t i = 0; i < 16; ++i)
        img.data[i] = static_cast<float>(i);
    Tensor k({1, 1, 3, 3});
    k.data[4] = 1.0f; // center tap
    const Tensor out = conv2d(img, k, nullptr);
    EXPECT_EQ(out.shape, img.shape);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_FLOAT_EQ(out.data[i], img.data[i]);
}

TEST(Nn, MaxpoolHalvesDims)
{
    Tensor img({1, 2, 8, 8});
    img.data[63] = 5.0f;
    const Tensor out = maxpool2x2(img, nullptr);
    EXPECT_EQ(out.dim(2), 4u);
    EXPECT_EQ(out.dim(3), 4u);
    EXPECT_FLOAT_EQ(out.data[15], 5.0f); // max survived pooling
}

TEST(Nn, TinyCnnShapesAndDeterminism)
{
    TinyCnn cnn(3, 4, 99);
    Tensor img({1, 3, 32, 32});
    img.randomize(1);
    OpCount ops;
    const Tensor a = cnn.detect(img, &ops);
    EXPECT_EQ(a.dim(0), 8u * 8u); // 32 -> 16 -> 8 grid
    EXPECT_EQ(a.dim(1), 4u);
    EXPECT_GT(ops.flops, 1000u);

    TinyCnn cnn2(3, 4, 99);
    OpCount ops2;
    const Tensor b = cnn2.detect(img, &ops2);
    EXPECT_EQ(a.data, b.data); // same seed -> same weights -> same output
}

TEST(Nn, MlpPolicyIsDistribution)
{
    MlpPolicy policy(16, 6, 32, 1);
    Tensor obs({1, 16});
    obs.randomize(2);
    const Tensor probs = policy.act(obs, nullptr);
    float sum = 0.0f;
    for (float p : probs.data) {
        EXPECT_GE(p, 0.0f);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Nn, NerEncoderClassifiesTokens)
{
    NerEncoder ner(32, 3, 5);
    Tensor tokens({10, 32});
    tokens.randomize(7);
    OpCount ops;
    const Tensor probs = ner.classify(tokens, &ops);
    EXPECT_EQ(probs.dim(0), 10u);
    EXPECT_EQ(probs.dim(1), 3u);
    for (std::size_t t = 0; t < 10; ++t) {
        float sum = 0.0f;
        for (std::size_t l = 0; l < 3; ++l)
            sum += probs.data[t * 3 + l];
        EXPECT_NEAR(sum, 1.0f, 1e-4f);
    }
    EXPECT_GT(ops.flops, 10000u);
}

TEST(Nn, ShapeErrorsRejected)
{
    Tensor x({1, 3});
    Tensor w({2, 4}); // wrong in-dim
    Tensor b({2});
    EXPECT_THROW(dense(x, w, b, nullptr), std::runtime_error);
    Tensor img({1, 2, 4, 4});
    Tensor k({1, 3, 3, 3}); // channel mismatch
    EXPECT_THROW(conv2d(img, k, nullptr), std::runtime_error);
}

// ---------------------------------------------------------------- Video

namespace
{

Frame
gradientFrame(std::size_t w, std::size_t h, int phase)
{
    Frame f(w, h);
    for (std::size_t y = 0; y < h; ++y)
        for (std::size_t x = 0; x < w; ++x)
            f.set(x, y, static_cast<std::uint8_t>(
                            (x * 2 + y * 3 + static_cast<std::size_t>(
                                                 phase) * 5) % 256));
    return f;
}

} // namespace

TEST(Video, RoundTripHighQualityIsClose)
{
    std::vector<Frame> frames{gradientFrame(32, 32, 0),
                              gradientFrame(32, 32, 1)};
    const VideoStream stream = videoEncode(frames, 95);
    const auto decoded = videoDecode(stream);
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_GT(psnr(frames[0], decoded[0]), 30.0);
    EXPECT_GT(psnr(frames[1], decoded[1]), 30.0);
}

TEST(Video, LowerQualityIsSmaller)
{
    std::vector<Frame> frames{gradientFrame(64, 64, 0)};
    const auto hq = videoEncode(frames, 95);
    const auto lq = videoEncode(frames, 10);
    EXPECT_LT(lq.bits.size(), hq.bits.size());
    // Still decodable.
    EXPECT_EQ(videoDecode(lq).size(), 1u);
}

TEST(Video, FlatFrameCompressesWell)
{
    Frame flat(64, 64);
    for (auto &p : flat.pixels)
        p = 128;
    const auto stream = videoEncode({flat}, 50);
    // One end-of-block marker + DC coefficient per 8x8 block at most.
    EXPECT_LT(stream.bits.size(), 64u * 8);
    const auto decoded = videoDecode(stream);
    EXPECT_GT(psnr(flat, decoded[0]), 45.0);
}

TEST(Video, RejectsBadInput)
{
    EXPECT_THROW(videoEncode({Frame(10, 10)}), std::runtime_error);
    VideoStream truncated;
    truncated.width = truncated.height = 8;
    truncated.frames = 1;
    EXPECT_THROW(videoDecode(truncated), std::runtime_error);
}

TEST(Video, EmptyStreamOk)
{
    const VideoStream s = videoEncode({});
    EXPECT_EQ(s.frames, 0u);
    EXPECT_TRUE(videoDecode(s).empty());
}
