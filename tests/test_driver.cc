/**
 * @file
 * Unit tests for the driver layer: interrupt coalescing / NAPI mode
 * switching and the DRX RX/TX data-queue partitioning.
 */

#include <gtest/gtest.h>

#include "driver/interrupts.hh"
#include "driver/queues.hh"

using namespace dmx;
using namespace dmx::driver;

TEST(Interrupts, SparseEventsStayInInterruptMode)
{
    sim::EventQueue eq;
    InterruptController irq(eq, "irq");
    for (int i = 0; i < 20; ++i) {
        eq.scheduleIn(tick_per_ms, [&] { irq.notify(); });
        eq.run();
    }
    EXPECT_FALSE(irq.polling());
    EXPECT_EQ(irq.interruptsDelivered(), 20u);
    EXPECT_EQ(irq.pollsDelivered(), 0u);
}

TEST(Interrupts, HighRateSwitchesToPolling)
{
    sim::EventQueue eq;
    InterruptController irq(eq, "irq");
    // 1 MHz completion rate, far above the 50 kHz threshold.
    for (int i = 0; i < 200; ++i) {
        eq.scheduleIn(tick_per_us, [&] { irq.notify(); });
        eq.run();
    }
    EXPECT_TRUE(irq.polling());
    EXPECT_GT(irq.pollsDelivered(), 0u);
    EXPECT_GT(irq.estimatedRateHz(), irq.params().polling_threshold_hz);
}

TEST(Interrupts, PollingLatencyIsLower)
{
    sim::EventQueue eq;
    InterruptController irq(eq, "irq");
    Tick first = 0, later = 0;
    eq.schedule(1, [&] { first = irq.notify(); });
    eq.run();
    for (int i = 0; i < 300; ++i) {
        eq.scheduleIn(tick_per_us, [&] { later = irq.notify(); });
        eq.run();
    }
    EXPECT_TRUE(irq.polling());
    EXPECT_LT(later, first);
}

TEST(Interrupts, HysteresisReturnsToInterrupts)
{
    sim::EventQueue eq;
    InterruptParams params;
    params.rate_alpha = 0.9; // adapt fast for the test
    InterruptController irq(eq, "irq", params);
    for (int i = 0; i < 100; ++i) {
        eq.scheduleIn(tick_per_us, [&] { irq.notify(); });
        eq.run();
    }
    EXPECT_TRUE(irq.polling());
    for (int i = 0; i < 20; ++i) {
        eq.scheduleIn(10 * tick_per_ms, [&] { irq.notify(); });
        eq.run();
    }
    EXPECT_FALSE(irq.polling());
}

TEST(Interrupts, BurstsGetCoalesced)
{
    sim::EventQueue eq;
    InterruptParams params;
    params.polling_threshold_hz = 1e12; // never switch to polling
    InterruptController irq(eq, "irq", params);
    Tick max_latency = 0;
    for (int i = 0; i < 10; ++i) {
        eq.scheduleIn(100, [&] { // 100 ps apart: a burst
            max_latency = std::max(max_latency, irq.notify());
        });
        eq.run();
    }
    EXPECT_GT(irq.coalescedBursts(), 0u);
    EXPECT_GE(max_latency,
              params.interrupt_latency + params.coalesce_delay);
}

TEST(Interrupts, ChargesHostCpuWork)
{
    sim::EventQueue eq;
    cpu::CorePool pool(eq, "pool", 4, 4);
    InterruptController irq(eq, "irq", {}, &pool);
    for (int i = 0; i < 50; ++i) {
        eq.scheduleIn(tick_per_ms, [&] { irq.notify(); });
        eq.run();
    }
    EXPECT_NEAR(pool.busyCoreSeconds(),
                50 * irq.params().cpu_work_per_irq, 1e-6);
}

TEST(DataQueueTest, PushPopAndBackpressure)
{
    DataQueue q(100);
    EXPECT_TRUE(q.push(60));
    EXPECT_EQ(q.used(), 60u);
    EXPECT_FALSE(q.push(50)); // would overflow
    q.pop(30);
    EXPECT_TRUE(q.push(50));
    EXPECT_EQ(q.used(), 80u);
    EXPECT_EQ(q.highWater(), 80u);
}

TEST(DataQueueTest, PopBeyondUsedPanics)
{
    DataQueue q(100);
    q.push(10);
    EXPECT_THROW(q.pop(11), std::logic_error);
}

TEST(DataQueueTest, ZeroBytePushIsRejected)
{
    // A zero-byte descriptor is a driver bug, not backpressure: it must
    // not silently "succeed" and confuse head/tail accounting.
    DataQueue q(100);
    EXPECT_THROW(q.push(0), std::runtime_error);
    EXPECT_EQ(q.used(), 0u);
    EXPECT_EQ(q.tail(), 0u);
}

TEST(DataQueueTest, TailWraparoundIsGuarded)
{
    // head/tail are absolute monotonic counters; used() = tail - head
    // only holds while tail has not wrapped past UINT64_MAX. Drive the
    // tail to the limit and check the guard trips instead of wrapping.
    const std::uint64_t max = ~std::uint64_t(0);
    DataQueue q(max);
    EXPECT_TRUE(q.push(max));
    q.pop(max);
    EXPECT_EQ(q.used(), 0u);
    EXPECT_THROW(q.push(1), std::logic_error);
}

TEST(DataQueueTest, GuardTripsMidStreamNotOnlyOnFirstPush)
{
    // The wraparound guard must hold for any push that would carry the
    // absolute tail past UINT64_MAX, not just a single max-sized one.
    const std::uint64_t max = ~std::uint64_t(0);
    DataQueue q(max);
    EXPECT_TRUE(q.push(max - 10));
    q.pop(max - 10);
    EXPECT_TRUE(q.push(10)); // tail == max exactly: still legal
    q.pop(10);
    EXPECT_EQ(q.used(), 0u);
    EXPECT_EQ(q.tail(), max);
    EXPECT_THROW(q.push(1), std::logic_error);
    // The failed push must not have perturbed the pointers.
    EXPECT_EQ(q.tail(), max);
    EXPECT_EQ(q.head(), max);
}

TEST(DataQueueTest, RejectsZeroCapacity)
{
    EXPECT_THROW(DataQueue(0), std::runtime_error);
}

TEST(DrxQueuesTest, PaperPartitioningSupports40Accelerators)
{
    // 8 GB of queue memory at 100 MB per pair, two pairs per peer.
    EXPECT_EQ(DrxQueues::maxPeers(8ull * gib, 100ull * mib), 40u);
}

TEST(DrxQueuesTest, SeparateQueuesPerPeerAndKind)
{
    DrxQueues qs(8ull * gib, 100ull * mib, 4);
    qs.rx(1, PeerKind::Accelerator).push(1000);
    EXPECT_EQ(qs.rx(1, PeerKind::Accelerator).used(), 1000u);
    EXPECT_EQ(qs.rx(1, PeerKind::Drx).used(), 0u);
    EXPECT_EQ(qs.tx(1, PeerKind::Accelerator).used(), 0u);
    EXPECT_EQ(qs.rx(2, PeerKind::Accelerator).used(), 0u);
}

TEST(DrxQueuesTest, RejectsOverSubscription)
{
    EXPECT_THROW(DrxQueues(1ull * gib, 100ull * mib, 6),
                 std::runtime_error); // only 5 fit
    EXPECT_NO_THROW(DrxQueues(1ull * gib, 100ull * mib, 5));
}

TEST(DrxQueuesTest, BadPeerIndexIsFatal)
{
    DrxQueues qs(8ull * gib, 100ull * mib, 2);
    EXPECT_THROW(qs.rx(2, PeerKind::Accelerator), std::runtime_error);
}
