/**
 * @file
 * Tests for the data-integrity layer: CRC32 checksums, the seeded
 * corruption plan (determinism, scripting, stats taxonomy), the three
 * hardware injection sites (DMA payload flips, DRX scratchpad SEC-DED
 * ECC, PCIe link-CRC replays), end-to-end protected chains with
 * checkpointed recovery, and jobs-invariant determinism of the
 * Integrity trace category.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "drx/machine.hh"
#include "drx/program.hh"
#include "exec/scenario.hh"
#include "fault/fault.hh"
#include "integrity/chain.hh"
#include "integrity/checksum.hh"
#include "integrity/integrity.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"
#include "runtime/runtime.hh"
#include "sys/system.hh"
#include "trace/trace.hh"

using namespace dmx;
using namespace dmx::integrity;

namespace
{

/** A kernel that increments every byte. */
runtime::Bytes
bump(const runtime::Bytes &in, kernels::OpCount &ops)
{
    runtime::Bytes out = in;
    for (auto &b : out)
        ++b;
    ops.int_ops += out.size();
    ops.bytes_read += in.size();
    ops.bytes_written += out.size();
    return out;
}

runtime::Bytes
patternBytes(std::size_t n)
{
    runtime::Bytes b(n);
    for (std::size_t i = 0; i < n; ++i)
        b[i] = static_cast<std::uint8_t>(i * 7 + 3);
    return b;
}

} // namespace

// ------------------------------------------------------------- crc32

TEST(Crc32, KnownAnswerVector)
{
    // The canonical CRC-32/ISO-HDLC check value.
    const std::uint8_t msg[] = {'1', '2', '3', '4', '5',
                                '6', '7', '8', '9'};
    EXPECT_EQ(crc32(msg, sizeof(msg)), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, SingleBitFlipChangesChecksum)
{
    runtime::Bytes data = patternBytes(4096);
    const std::uint32_t ref = crc32(data);
    for (std::size_t bit : {std::size_t{0}, std::size_t{13},
                            std::size_t{4096 * 8 - 1}}) {
        runtime::Bytes flipped = data;
        flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_NE(crc32(flipped), ref) << "bit " << bit;
    }
}

// ---------------------------------------------------- IntegrityPlan

TEST(IntegrityPlan, EqualSeedsMakeEqualDecisions)
{
    IntegritySpec spec;
    spec.seed = 42;
    spec.payload_flip_prob = 0.5;
    spec.scratch_sec_prob = 0.3;
    spec.scratch_ded_prob = 0.1;
    spec.link_crc_prob = 0.5;

    IntegrityPlan a(spec), b(spec);
    for (int i = 0; i < 200; ++i) {
        const auto pa = a.onPayload(512);
        const auto pb = b.onPayload(512);
        EXPECT_EQ(pa.flip, pb.flip);
        EXPECT_EQ(pa.bit, pb.bit);
        EXPECT_EQ(a.onScratch(), b.onScratch());
        EXPECT_EQ(a.onLink(0, 1, 4096), b.onLink(0, 1, 4096));
    }
    EXPECT_GT(a.stats().payload_flips, 0u);
    EXPECT_GT(a.stats().link_crc_replays, 0u);
}

TEST(IntegrityPlan, SitesDrawFromIndependentStreams)
{
    // Interleaving queries at other sites must not perturb a site's
    // decision sequence.
    IntegritySpec spec;
    spec.seed = 7;
    spec.payload_flip_prob = 0.4;
    spec.link_crc_prob = 0.4;

    IntegrityPlan pure(spec), mixed(spec);
    for (int i = 0; i < 100; ++i) {
        const auto a = pure.onPayload(256);
        mixed.onLink(0, 1, 64);
        mixed.onScratch();
        const auto b = mixed.onPayload(256);
        EXPECT_EQ(a.flip, b.flip);
        EXPECT_EQ(a.bit, b.bit);
    }
}

TEST(IntegrityPlan, ScriptsOverrideWithoutPerturbingLaterDraws)
{
    IntegritySpec spec;
    spec.seed = 9;
    spec.payload_flip_prob = 0.5;

    IntegrityPlan plain(spec), scripted(spec);
    scripted.scriptPayload(0, 99);

    const auto s0 = scripted.onPayload(64);
    EXPECT_TRUE(s0.flip);
    EXPECT_EQ(s0.bit, 99u);
    plain.onPayload(64);

    // Every later decision is unchanged by the script.
    for (int i = 0; i < 100; ++i) {
        const auto a = plain.onPayload(64);
        const auto b = scripted.onPayload(64);
        EXPECT_EQ(a.flip, b.flip);
        EXPECT_EQ(a.bit, b.bit);
    }
}

TEST(IntegrityPlan, StatsFollowTheTaxonomy)
{
    IntegrityPlan plan; // all probabilities zero
    plan.scriptPayload(0, 5);
    plan.scriptScratch(0, fault::EccAction::CorrectSingle);
    plan.scriptScratch(1, fault::EccAction::DetectDouble);
    plan.scriptLink(0, 2);

    EXPECT_TRUE(plan.onPayload(16).flip);
    EXPECT_FALSE(plan.onPayload(16).flip);
    EXPECT_EQ(plan.onScratch(), fault::EccAction::CorrectSingle);
    EXPECT_EQ(plan.onScratch(), fault::EccAction::DetectDouble);
    EXPECT_EQ(plan.onScratch(), fault::EccAction::None);
    EXPECT_EQ(plan.onLink(0, 1, 64), 2u);
    EXPECT_EQ(plan.onLink(0, 1, 64), 0u);

    const IntegrityStats &s = plan.stats();
    EXPECT_EQ(s.payloads_seen, 2u);
    EXPECT_EQ(s.payload_flips, 1u);
    EXPECT_EQ(s.scratch_seen, 3u);
    EXPECT_EQ(s.scratch_corrected, 1u);
    EXPECT_EQ(s.scratch_uncorrectable, 1u);
    EXPECT_EQ(s.links_seen, 2u);
    EXPECT_EQ(s.link_crc_replays, 2u);
    // Taxonomy rollups: payload flips are injected but *not* detected
    // (only an end-to-end checksum can see them).
    EXPECT_EQ(s.injected(), 5u);
    EXPECT_EQ(s.detected(), 4u);
    EXPECT_EQ(s.corrected(), 3u);
    EXPECT_EQ(s.uncorrected(), 1u);
}

// ----------------------------------------------- payload flips (DMA)

TEST(PayloadFlip, FlipsExactlyOneBitOfDeliveredCopy)
{
    runtime::Platform plat;
    const auto a = plat.addAccelerator("a0", accel::Domain::FFT, bump);
    const auto b = plat.addAccelerator("a1", accel::Domain::SVM, bump);
    (void)a;

    IntegrityPlan plan;
    plan.scriptPayload(0, 13); // bit 13 = byte 1, bit 5
    plat.setIntegrityPlan(&plan);

    runtime::Context ctx = plat.createContext();
    const runtime::Bytes src_data = patternBytes(64);
    const auto src = ctx.createBuffer(src_data);
    const auto dst = ctx.createBuffer();
    ASSERT_TRUE(ctx.queue(a).enqueueCopy(src, dst, b).valid());
    ctx.finish();

    const runtime::Bytes &got = ctx.read(dst);
    ASSERT_EQ(got.size(), src_data.size());
    runtime::Bytes expect = src_data;
    expect[1] ^= static_cast<std::uint8_t>(1u << 5);
    EXPECT_EQ(got, expect);
    EXPECT_EQ(plan.stats().payload_flips, 1u);
    // The source stays intact: retransmission can always recover.
    EXPECT_EQ(ctx.read(src), src_data);
}

// ------------------------------------------------ link CRC (fabric)

TEST(LinkCrc, ReplaysDelayCopiesByTheModeledLatency)
{
    const auto copyTime = [](IntegrityPlan *plan) {
        runtime::Platform plat;
        const auto a =
            plat.addAccelerator("a0", accel::Domain::FFT, bump);
        const auto b =
            plat.addAccelerator("a1", accel::Domain::SVM, bump);
        if (plan)
            plat.setIntegrityPlan(plan);
        runtime::Context ctx = plat.createContext();
        const auto src = ctx.createBuffer(patternBytes(4096));
        const auto dst = ctx.createBuffer();
        runtime::Event e = ctx.queue(a).enqueueCopy(src, dst, b);
        ctx.finish();
        EXPECT_TRUE(e.ok());
        return e.completeTime();
    };

    const Tick base = copyTime(nullptr);

    IntegrityPlan plan;
    plan.scriptLink(0, 2);
    const Tick delayed = copyTime(&plan);

    // Each replay costs exactly FabricParams::crc_replay_latency
    // (default 600 ns); the payload itself is never corrupted.
    EXPECT_EQ(delayed, base + 2 * 600 * tick_per_ns);
    EXPECT_EQ(plan.stats().link_crc_replays, 2u);
}

// -------------------------------------------- DRX scratchpad SEC-DED

namespace
{

/** A small scale-by-2 program over 16 floats. */
drx::Program
scaleProgram(std::uint64_t in, std::uint64_t out)
{
    using namespace dmx::drx;
    return ProgramBuilder("scale2")
        .loop(0, 4)
        .streamCfg(0, in, DType::F32, 4, 0, 0, 4)
        .streamCfg(1, out, DType::F32, 4, 0, 0, 4)
        .sync()
        .load(0, 0)
        .compute1(VFunc::MulS, 1, 0, 2.0f)
        .store(1, 1)
        .build();
}

} // namespace

TEST(DrxEcc, SingleBitCorrectsInPlaceAtScrubPenalty)
{
    drx::DrxMachine clean, upset;
    const auto in_c = clean.alloc(64), out_c = clean.alloc(64);
    const auto in_u = upset.alloc(64), out_u = upset.alloc(64);
    const runtime::Bytes data = patternBytes(64);
    clean.write(in_c, data.data(), data.size());
    upset.write(in_u, data.data(), data.size());

    IntegrityPlan plan;
    plan.scriptScratch(0, fault::EccAction::CorrectSingle);
    upset.setEccHook([&plan] { return plan.onScratch(); });

    const drx::RunResult base = clean.run(scaleProgram(in_c, out_c));
    const drx::RunResult hit = upset.run(scaleProgram(in_u, out_u));

    // Corrected in place: output identical, one scrub penalty charged.
    EXPECT_EQ(upset.read(out_u, 64), clean.read(out_c, 64));
    EXPECT_FALSE(hit.faulted);
    EXPECT_EQ(hit.ecc_corrected, 1u);
    EXPECT_GT(hit.total_cycles, base.total_cycles);
    EXPECT_EQ(upset.eccCorrected(), 1u);
    EXPECT_EQ(upset.eccUncorrectable(), 0u);
}

TEST(DrxEcc, DoubleBitAbortsTheRun)
{
    drx::DrxMachine m;
    const auto in = m.alloc(64), out = m.alloc(64);
    const runtime::Bytes data = patternBytes(64);
    m.write(in, data.data(), data.size());

    IntegrityPlan plan;
    plan.scriptScratch(0, fault::EccAction::DetectDouble);
    m.setEccHook([&plan] { return plan.onScratch(); });

    const drx::RunResult res = m.run(scaleProgram(in, out));
    EXPECT_TRUE(res.faulted);
    EXPECT_TRUE(res.ecc_uncorrectable);
    EXPECT_EQ(res.bytes_written, 0u);
    EXPECT_EQ(m.eccUncorrectable(), 1u);
}

TEST(DrxEcc, ReplayRunChargesTheSamePenaltyAsRun)
{
    // Two machines consume identical ECC decision sequences: one
    // re-runs the program, the other replays a clean memo. Observable
    // results must match cycle for cycle (the PR 5 memo contract).
    IntegritySpec spec;
    spec.seed = 11;
    spec.scratch_sec_prob = 0.5;
    spec.scratch_ded_prob = 0.1;
    IntegrityPlan plan_a(spec), plan_b(spec);

    drx::DrxMachine real, memod;
    const auto in_a = real.alloc(64), out_a = real.alloc(64);
    const auto in_b = memod.alloc(64), out_b = memod.alloc(64);
    const runtime::Bytes data = patternBytes(64);
    real.write(in_a, data.data(), data.size());
    memod.write(in_b, data.data(), data.size());

    // Record the memo before any ECC events are possible.
    const drx::RunResult memo = memod.run(scaleProgram(in_b, out_b));
    ASSERT_FALSE(memo.faulted);
    ASSERT_EQ(memo.ecc_corrected, 0u);
    real.run(scaleProgram(in_a, out_a));

    real.setEccHook([&plan_a] { return plan_a.onScratch(); });
    memod.setEccHook([&plan_b] { return plan_b.onScratch(); });

    for (int i = 0; i < 20; ++i) {
        const drx::RunResult a = real.run(scaleProgram(in_a, out_a));
        const drx::RunResult b =
            memod.replayRun(scaleProgram(in_b, out_b), memo);
        EXPECT_EQ(a.total_cycles, b.total_cycles) << "round " << i;
        EXPECT_EQ(a.faulted, b.faulted) << "round " << i;
        EXPECT_EQ(a.ecc_corrected, b.ecc_corrected) << "round " << i;
        EXPECT_EQ(a.ecc_uncorrectable, b.ecc_uncorrectable)
            << "round " << i;
    }
    EXPECT_GT(real.eccCorrected(), 0u);
}

// ------------------------------------------------------------ chains

namespace
{

/** Three bump stages across three accelerators, with alternates. */
std::vector<ChainStage>
bumpChain(const std::vector<runtime::DeviceId> &devs,
          const std::vector<runtime::DeviceId> &alternates = {})
{
    std::vector<ChainStage> stages;
    for (runtime::DeviceId d : devs) {
        ChainStage st;
        st.device = d;
        st.alternates = alternates;
        stages.push_back(st);
    }
    return stages;
}

runtime::Bytes
bumped(runtime::Bytes b, unsigned times)
{
    for (unsigned t = 0; t < times; ++t)
        for (auto &x : b)
            ++x;
    return b;
}

} // namespace

TEST(Chain, UnprotectedRunMatchesManualPipeline)
{
    runtime::Platform plat;
    const std::vector<runtime::DeviceId> devs{
        plat.addAccelerator("a0", accel::Domain::FFT, bump),
        plat.addAccelerator("a1", accel::Domain::SVM, bump),
        plat.addAccelerator("a2", accel::Domain::Crypto, bump),
    };
    const runtime::Bytes input = patternBytes(256);

    const ChainReport rep = runChain(plat, bumpChain(devs), input);
    ASSERT_TRUE(rep.ok);
    EXPECT_EQ(rep.status, runtime::Status::Ok);
    EXPECT_EQ(rep.output, bumped(input, 3));
    EXPECT_EQ(rep.stages_run, 3u);
    EXPECT_EQ(rep.hops_run, 2u);
    EXPECT_EQ(rep.mismatches_detected, 0u);
    EXPECT_EQ(rep.recoveries(), 0u);
    EXPECT_GT(rep.makespan, 0u);
}

TEST(Chain, SameDeviceStagesSkipTheHop)
{
    runtime::Platform plat;
    const auto a = plat.addAccelerator("a0", accel::Domain::FFT, bump);
    const runtime::Bytes input = patternBytes(64);
    const ChainReport rep = runChain(plat, bumpChain({a, a, a}), input);
    ASSERT_TRUE(rep.ok);
    EXPECT_EQ(rep.output, bumped(input, 3));
    EXPECT_EQ(rep.hops_run, 0u);
}

TEST(Chain, DrxStageRestructuresLikeTheCpuReference)
{
    const restructure::Kernel kernel =
        restructure::melSpectrogram(8, 64, 16);
    // Finite float input (raw byte noise would decode to NaNs, for
    // which banded and dense summation legitimately differ).
    std::vector<float> vals(kernel.input.elems());
    for (std::size_t i = 0; i < vals.size(); ++i)
        vals[i] = std::sin(static_cast<float>(i) * 0.13f);
    runtime::Bytes input(kernel.input.bytes());
    std::memcpy(input.data(), vals.data(), input.size());

    runtime::Platform plat;
    ChainStage st;
    st.device = plat.addDrx("drx0", {});
    st.kernel = kernel;

    const ChainReport rep = runChain(plat, {st}, input);
    ASSERT_TRUE(rep.ok);
    EXPECT_EQ(rep.output, restructure::executeOnCpu(kernel, input));
}

TEST(Chain, SilentCorruptionEscapesWithoutProtection)
{
    runtime::Platform plat;
    const std::vector<runtime::DeviceId> devs{
        plat.addAccelerator("a0", accel::Domain::FFT, bump),
        plat.addAccelerator("a1", accel::Domain::SVM, bump),
        plat.addAccelerator("a2", accel::Domain::Crypto, bump),
    };
    IntegrityPlan plan;
    plan.scriptPayload(0, 21);
    plat.setIntegrityPlan(&plan);

    const runtime::Bytes input = patternBytes(256);
    const ChainReport rep = runChain(plat, bumpChain(devs), input);

    // The chain reports success - and delivers corrupt bytes. This is
    // the SDC escape the end-to-end checksum mode exists to kill.
    ASSERT_TRUE(rep.ok);
    EXPECT_NE(rep.output, bumped(input, 3));
    EXPECT_EQ(rep.mismatches_detected, 0u);
}

TEST(Chain, ChecksumDetectsAndRetransmitsTheHop)
{
    runtime::Platform plat;
    const std::vector<runtime::DeviceId> devs{
        plat.addAccelerator("a0", accel::Domain::FFT, bump),
        plat.addAccelerator("a1", accel::Domain::SVM, bump),
        plat.addAccelerator("a2", accel::Domain::Crypto, bump),
    };
    IntegrityPlan plan;
    plan.scriptPayload(0, 21);
    plat.setIntegrityPlan(&plan);

    ChainConfig cfg;
    cfg.protection = ProtectionMode::E2eChecksum;
    cfg.policy = MismatchPolicy::HopRetransmit;

    const runtime::Bytes input = patternBytes(256);
    const ChainReport rep = runChain(plat, bumpChain(devs), input, cfg);

    ASSERT_TRUE(rep.ok);
    EXPECT_EQ(rep.output, bumped(input, 3));
    EXPECT_EQ(rep.mismatches_detected, 1u);
    EXPECT_EQ(rep.hop_retransmits, 1u);
    EXPECT_EQ(rep.rollbacks, 0u);
    EXPECT_EQ(rep.hops_run, 3u); // 2 clean + 1 retransmit
    EXPECT_EQ(rep.stages_run, 3u);
}

TEST(Chain, RollbackReplayRecoversFromTheCheckpoint)
{
    runtime::Platform plat;
    const std::vector<runtime::DeviceId> devs{
        plat.addAccelerator("a0", accel::Domain::FFT, bump),
        plat.addAccelerator("a1", accel::Domain::SVM, bump),
        plat.addAccelerator("a2", accel::Domain::Crypto, bump),
    };
    IntegrityPlan plan;
    plan.scriptPayload(1, 9); // corrupt the hop into stage 2
    plat.setIntegrityPlan(&plan);

    ChainConfig cfg;
    cfg.protection = ProtectionMode::E2eChecksum;
    cfg.policy = MismatchPolicy::RollbackReplay;
    cfg.checkpoints = false; // rollback target = the chain input

    const runtime::Bytes input = patternBytes(256);
    const ChainReport rep = runChain(plat, bumpChain(devs), input, cfg);

    ASSERT_TRUE(rep.ok);
    EXPECT_EQ(rep.output, bumped(input, 3));
    EXPECT_EQ(rep.mismatches_detected, 1u);
    EXPECT_EQ(rep.rollbacks, 1u);
    EXPECT_EQ(rep.hop_retransmits, 0u);
    // Full-chain replay: stages 0,1 ran twice, stage 2 once.
    EXPECT_EQ(rep.stages_run, 5u);
    EXPECT_EQ(rep.hops_run, 4u);
}

TEST(Chain, ProbabilisticCorruptionNeverEscapesUnderChecksums)
{
    for (const MismatchPolicy policy :
         {MismatchPolicy::HopRetransmit, MismatchPolicy::RollbackReplay}) {
        runtime::Platform plat;
        const std::vector<runtime::DeviceId> devs{
            plat.addAccelerator("a0", accel::Domain::FFT, bump),
            plat.addAccelerator("a1", accel::Domain::SVM, bump),
            plat.addAccelerator("a2", accel::Domain::Crypto, bump),
        };
        IntegritySpec spec;
        spec.seed = 1234;
        spec.payload_flip_prob = 0.35; // brutal per-hop corruption rate
        IntegrityPlan plan(spec);
        plat.setIntegrityPlan(&plan);

        ChainConfig cfg;
        cfg.protection = ProtectionMode::E2eChecksum;
        cfg.policy = policy;
        cfg.checkpoints = true;
        cfg.max_recoveries = 256;

        const runtime::Bytes input = patternBytes(512);
        const ChainReport rep =
            runChain(plat, bumpChain(devs), input, cfg);

        ASSERT_TRUE(rep.ok) << toString(policy);
        EXPECT_EQ(rep.output, bumped(input, 3)) << toString(policy);
        EXPECT_EQ(rep.mismatches_detected, rep.recoveries())
            << toString(policy);
    }
}

TEST(Chain, CheckpointedFailoverReplaysStrictlyFewerStages)
{
    const auto runWithCheckpoints = [](bool checkpoints) {
        runtime::Platform plat;
        const std::vector<runtime::DeviceId> devs{
            plat.addAccelerator("a0", accel::Domain::FFT, bump),
            plat.addAccelerator("a1", accel::Domain::SVM, bump),
            plat.addAccelerator("a2", accel::Domain::Crypto, bump),
        };
        const auto spare =
            plat.addAccelerator("spare", accel::Domain::FFT, bump);

        // Stage 2's device fails every attempt of its first command
        // (attempt queries 2..5 after stages 0 and 1 each consumed
        // one); the resumed stage runs cleanly on the spare.
        fault::FaultPlan fplan;
        for (std::uint64_t n = 2; n <= 5; ++n)
            fplan.scriptKernel(n, fault::KernelAction::Fail);
        plat.setFaultPlan(&fplan);

        auto stages = bumpChain(devs);
        for (auto &st : stages)
            st.alternates = {spare};

        ChainConfig cfg;
        cfg.protection = ProtectionMode::E2eChecksum;
        cfg.checkpoints = checkpoints;

        const runtime::Bytes input = patternBytes(128);
        const ChainReport rep = runChain(plat, stages, input, cfg);
        EXPECT_TRUE(rep.ok);
        EXPECT_EQ(rep.output, bumped(input, 3));
        EXPECT_EQ(rep.failovers, 1u);
        return rep.stages_run;
    };

    const unsigned with_ckpt = runWithCheckpoints(true);
    const unsigned without = runWithCheckpoints(false);
    // Checkpointed recovery resumes at the failed stage (0,1,2-fail,2);
    // without checkpoints the whole chain replays (0,1,2-fail,0,1,2).
    EXPECT_EQ(with_ckpt, 4u);
    EXPECT_EQ(without, 6u);
    EXPECT_LT(with_ckpt, without);
}

TEST(Chain, RecoveryBudgetExhaustionFailsTheChain)
{
    runtime::Platform plat;
    const std::vector<runtime::DeviceId> devs{
        plat.addAccelerator("a0", accel::Domain::FFT, bump),
        plat.addAccelerator("a1", accel::Domain::SVM, bump),
    };
    IntegrityPlan plan;
    for (std::uint64_t n = 0; n < 8; ++n)
        plan.scriptPayload(n, 3); // every delivery corrupts
    plat.setIntegrityPlan(&plan);

    ChainConfig cfg;
    cfg.protection = ProtectionMode::E2eChecksum;
    cfg.max_recoveries = 2;

    const ChainReport rep =
        runChain(plat, bumpChain(devs), patternBytes(64), cfg);
    EXPECT_FALSE(rep.ok);
    EXPECT_EQ(rep.status, runtime::Status::Failed);
    EXPECT_TRUE(rep.output.empty());
    EXPECT_EQ(rep.recoveries(), cfg.max_recoveries);
}

// --------------------------------------- determinism (jobs-invariance)

namespace
{

/**
 * One randomized protected-chain scenario under probabilistic payload
 * flips, SEC-DED upsets and link-CRC replays. @return the serialized
 * Integrity-category trace plus the chain's recovery counters.
 */
std::string
integrityScenario(exec::ScenarioContext &ctx)
{
    const std::uint64_t seed = ctx.rng().next();

    runtime::Platform plat;
    const std::vector<runtime::DeviceId> devs{
        plat.addAccelerator("a0", accel::Domain::FFT, bump),
        plat.addAccelerator("a1", accel::Domain::SVM, bump),
        plat.addAccelerator("a2", accel::Domain::Crypto, bump),
    };
    IntegritySpec spec;
    spec.seed = seed;
    spec.payload_flip_prob = 0.25;
    spec.link_crc_prob = 0.25;
    IntegrityPlan plan(spec);
    plat.setIntegrityPlan(&plan);

    ChainConfig cfg;
    cfg.protection = ProtectionMode::E2eChecksum;
    cfg.policy = MismatchPolicy::RollbackReplay;
    cfg.checkpoints = true;
    cfg.max_recoveries = 128;

    const ChainReport rep =
        runChain(plat, bumpChain(devs), patternBytes(256), cfg);

    const trace::TraceBuffer &tb = ctx.trace();
    std::string out;
    for (const trace::Span &s : tb.spans()) {
        if (s.cat != trace::Category::Integrity)
            continue;
        out += tb.stringAt(s.name) + "|" + tb.stringAt(s.track) + "|" +
               std::to_string(s.begin) + "|" + std::to_string(s.end) +
               "\n";
    }
    out += "flips=" +
           std::to_string(tb.counterTotal("integrity.payload_flips"));
    out += " crc=" + std::to_string(tb.counterTotal("fabric.crc_replays"));
    out += " ok=" + std::to_string(rep.ok);
    out += " rec=" + std::to_string(rep.recoveries());
    out += " makespan=" + std::to_string(rep.makespan);
    return out;
}

} // namespace

TEST(IntegrityDeterminism, TracesAndCountersAreJobsInvariant)
{
    constexpr std::size_t kScenarios = 6;
    const auto fn = std::function<std::string(exec::ScenarioContext &,
                                              std::size_t)>(
        [](exec::ScenarioContext &ctx, std::size_t) {
            return integrityScenario(ctx);
        });

    exec::ScenarioRunner serial(1), pooled(8);
    const std::vector<std::string> a =
        serial.map<std::string>(kScenarios, fn);
    const std::vector<std::string> b =
        pooled.map<std::string>(kScenarios, fn);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "scenario " << i;

    // The sweep must actually inject something.
    bool any_flip = false;
    for (const std::string &s : a)
        if (s.find("payload_flip") != std::string::npos)
            any_flip = true;
    EXPECT_TRUE(any_flip);
}

// --------------------------------------------- sys closed-loop wiring

TEST(SysIntegrity, LinkCrcReplaysSlowTheClosedLoopDeterministically)
{
    sys::AppModel app;
    app.name = "tiny";
    app.input_bytes = 8 * mib;
    sys::KernelTiming k1;
    k1.name = "k1";
    k1.cpu_core_seconds = 0.010;
    k1.accel_cycles = 625'000;
    k1.accel_freq_hz = 250e6;
    k1.out_bytes = 16 * mib;
    app.kernels.push_back(k1);
    sys::KernelTiming k2 = k1;
    k2.name = "k2";
    k2.cpu_core_seconds = 0.008;
    k2.out_bytes = 1 * mib;
    app.kernels.push_back(k2);
    sys::MotionTiming m;
    m.name = "restructure";
    m.cpu_core_seconds = 0.030;
    m.drx_cycles = 1'000'000;
    m.in_bytes = 16 * mib;
    m.out_bytes = 16 * mib;
    app.motions.push_back(m);

    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::BumpInTheWire;
    cfg.n_apps = 2;
    cfg.requests_per_app = 2;

    const sys::RunStats base = sys::simulateSystem(cfg, {app});
    EXPECT_EQ(base.link_crc_replays, 0u);
    EXPECT_EQ(base.integrity_injected, 0u);

    IntegritySpec spec;
    spec.seed = 3;
    spec.link_crc_prob = 1.0; // every flow replays once
    IntegrityPlan plan(spec);
    cfg.integrity_plan = &plan;
    const sys::RunStats hit = sys::simulateSystem(cfg, {app});

    EXPECT_GT(hit.link_crc_replays, 0u);
    EXPECT_EQ(hit.integrity_injected, hit.link_crc_replays);
    EXPECT_EQ(hit.integrity_detected, hit.link_crc_replays);
    EXPECT_EQ(hit.integrity_corrected, hit.link_crc_replays);
    EXPECT_EQ(hit.integrity_uncorrected, 0u);
    EXPECT_EQ(hit.integrity_sdc_escapes, 0u);
    // Replays cost link time, never correctness.
    EXPECT_GT(hit.makespan_ticks, base.makespan_ticks);

    // Deterministic: an identical plan reproduces the run exactly.
    IntegrityPlan plan2(spec);
    cfg.integrity_plan = &plan2;
    const sys::RunStats again = sys::simulateSystem(cfg, {app});
    EXPECT_EQ(again.makespan_ticks, hit.makespan_ticks);
    EXPECT_EQ(again.link_crc_replays, hit.link_crc_replays);
}
