/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"
#include "sim/sim_object.hh"

using namespace dmx;
using namespace dmx::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TieBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, TieBreakByPriority)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); }, Priority::Default);
    eq.schedule(100, [&] { order.push_back(0); }, Priority::Interrupt);
    eq.schedule(100, [&] { order.push_back(2); }, Priority::Stat);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(50, [&] {
        eq.scheduleIn(25, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 75u);
}

TEST(EventQueue, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventHandle h = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.executedCount(), 0u);
}

TEST(EventQueue, CancelAfterFireIsHarmless)
{
    EventQueue eq;
    int runs = 0;
    EventHandle h = eq.schedule(10, [&] { ++runs; });
    eq.run();
    EXPECT_FALSE(h.pending());
    h.cancel(); // no effect, no crash
    EXPECT_EQ(runs, 1);
}

TEST(EventQueue, PendingCountSkipsCancelled)
{
    EventQueue eq;
    EventHandle a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pendingCount(), 2u);
    a.cancel();
    EXPECT_EQ(eq.pendingCount(), 1u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {10u, 20u, 30u, 40u})
        eq.schedule(t, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.runUntil(25);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    // Events exactly at the limit still run.
    eq.runUntil(30);
    EXPECT_EQ(fired.size(), 3u);
    eq.run();
    EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    eq.schedule(5, [] {});
    EXPECT_TRUE(eq.runOne());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.runOne();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pendingCount(), 0u);
    EXPECT_EQ(eq.executedCount(), 0u);
}

TEST(EventQueue, SelfReschedulingEventChain)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 10)
            eq.scheduleIn(100, tick);
    };
    eq.schedule(0, tick);
    eq.run();
    EXPECT_EQ(count, 10);
    EXPECT_EQ(eq.now(), 900u);
}

TEST(SimObjectTest, NameAndClock)
{
    EventQueue eq;
    ClockedObject obj(eq, "system.drx0", ClockDomain{1e9});
    EXPECT_EQ(obj.name(), "system.drx0");
    EXPECT_EQ(obj.cyclesToTicks(3), 3000u);
    EXPECT_EQ(obj.now(), 0u);
}
