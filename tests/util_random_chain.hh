/**
 * @file
 * Shared random-chain application generator for the property and
 * differential test suites: a well-formed k-kernel / (k-1)-motion chain
 * derived deterministically from a seed, so every suite that sweeps
 * "random chain configs" draws from the same family.
 */

#ifndef DMX_TESTS_UTIL_RANDOM_CHAIN_HH
#define DMX_TESTS_UTIL_RANDOM_CHAIN_HH

#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"
#include "integrity/chain.hh"
#include "runtime/runtime.hh"
#include "sys/system.hh"

namespace dmx::testutil
{

/** Random but well-formed chain app: k kernels, k-1 motions. */
inline sys::AppModel
randomChainApp(std::uint64_t seed)
{
    Rng rng(seed * 7919 + 13);
    sys::AppModel app;
    app.name = "rand" + std::to_string(seed);
    app.input_bytes = (1 + rng.below(8)) * mib;

    const unsigned k = 2 + static_cast<unsigned>(rng.below(3));
    std::uint64_t bytes = (2 + rng.below(14)) * mib;
    for (unsigned i = 0; i < k; ++i) {
        sys::KernelTiming kt;
        kt.name = "k" + std::to_string(i);
        kt.cpu_core_seconds = rng.uniform(0.002, 0.02);
        kt.accel_cycles = 100'000 + rng.below(900'000);
        kt.accel_freq_hz = 250e6;
        kt.out_bytes = bytes;
        app.kernels.push_back(kt);

        if (i + 1 < k) {
            sys::MotionTiming m;
            m.name = "m" + std::to_string(i);
            m.cpu_core_seconds = rng.uniform(0.005, 0.04);
            m.drx_cycles = 200'000 + rng.below(1'500'000);
            m.in_bytes = bytes;
            bytes = (1 + rng.below(10)) * mib;
            m.out_bytes = bytes;
            app.motions.push_back(m);
        }
    }
    return app;
}

/** Deterministic accelerator kernel: increments every byte. */
inline runtime::Bytes
chainBumpKernel(const runtime::Bytes &in, kernels::OpCount &ops)
{
    runtime::Bytes out = in;
    for (auto &b : out)
        ++b;
    ops.int_ops += out.size();
    ops.bytes_read += in.size();
    ops.bytes_written += out.size();
    return out;
}

/** A random functional chain bound to one runtime::Platform. */
struct RuntimeChainSpec
{
    runtime::Bytes input;
    std::vector<integrity::ChainStage> stages;
};

/**
 * Build a random but well-formed functional chain on @p plat for the
 * differential chain-equivalence harness: the platform gets two
 * interchangeable accelerators and two DRX cards (each stage lists the
 * same-type sibling as its failover alternate), and 3-6 stages mix
 * accelerator kernels with single-stage DRX restructure kernels whose
 * shapes line up along the chain. Adjacent stages sometimes share a
 * device (so descriptor-mode fusion has legal work), and - when
 * @p allow_gather - an occasional random-permutation Gather stage
 * exercises the fusion legality rejection.
 *
 * Deterministic in @p seed: building the same seed on two fresh
 * platforms yields identical device ids, stages and input bytes.
 */
inline RuntimeChainSpec
randomRuntimeChain(runtime::Platform &plat, std::uint64_t seed,
                   bool allow_gather = true)
{
    Rng rng(seed * 9176 + 101);
    const runtime::DeviceId a0 =
        plat.addAccelerator("a0", accel::Domain::FFT, chainBumpKernel);
    const runtime::DeviceId a1 =
        plat.addAccelerator("a1", accel::Domain::SVM, chainBumpKernel);
    const runtime::DeviceId d0 = plat.addDrx("drx0", {});
    const runtime::DeviceId d1 = plat.addDrx("drx1", {});
    const auto sibling = [&](runtime::DeviceId dev) {
        if (dev == a0)
            return a1;
        if (dev == a1)
            return a0;
        return dev == d0 ? d1 : d0;
    };

    RuntimeChainSpec spec;
    restructure::BufferDesc desc;
    desc.dtype = DType::F32;
    desc.shape = {4 + rng.below(4), 8 + rng.below(8)};

    // Finite-float input pattern (decodes cleanly for DRX math).
    std::vector<float> vals(desc.elems());
    for (std::size_t i = 0; i < vals.size(); ++i)
        vals[i] = 0.25f + 0.125f * static_cast<float>((seed + i) % 31);
    spec.input.resize(desc.bytes());
    std::memcpy(spec.input.data(), vals.data(), spec.input.size());

    const runtime::DeviceId devices[4] = {a0, a1, d0, d1};
    runtime::DeviceId prev = devices[rng.below(4)];
    const unsigned k = 3 + static_cast<unsigned>(rng.below(4));
    for (unsigned s = 0; s < k; ++s) {
        // Half the time stay on the previous device: adjacent
        // same-device DRX stages are the fusion candidates.
        const runtime::DeviceId dev =
            rng.below(2) ? prev : devices[rng.below(4)];
        prev = dev;

        integrity::ChainStage st;
        st.device = dev;
        st.alternates = {sibling(dev)};
        if (dev == d0 || dev == d1) {
            restructure::Kernel kern;
            kern.name = "rk" + std::to_string(seed) + "_" +
                        std::to_string(s);
            kern.input = desc;
            switch (rng.below(allow_gather ? 6 : 5)) {
              case 0:
                kern.stages.push_back(restructure::mapStage(
                    {{restructure::MapFn::Scale,
                      static_cast<float>(rng.uniform(0.5, 2.0))}}));
                break;
              case 1:
                kern.stages.push_back(restructure::mapStage(
                    {{restructure::MapFn::Offset,
                      static_cast<float>(rng.uniform(-1.0, 1.0))}}));
                break;
              case 2:
                kern.stages.push_back(restructure::transposeStage());
                break;
              case 3:
                kern.stages.push_back(restructure::padStage(
                    desc.inner() + 1 + rng.below(8), 0.5f));
                break;
              case 4:
                kern.stages.push_back(restructure::reduceStage());
                break;
              default: {
                // Random permutation gather: executes fine, but its
                // data-dependent addressing must block fusion.
                auto idx = std::make_shared<std::vector<std::uint32_t>>(
                    desc.elems());
                for (std::size_t i = 0; i < idx->size(); ++i)
                    (*idx)[i] = static_cast<std::uint32_t>(i);
                for (std::size_t i = idx->size(); i > 1; --i) {
                    const std::size_t j = rng.below(i);
                    std::swap((*idx)[i - 1], (*idx)[j]);
                }
                kern.stages.push_back(restructure::gatherStage(
                    std::move(idx), desc.shape));
                break;
              }
            }
            desc = kern.output();
            st.kernel = std::move(kern);
        }
        // Accelerator stages preserve the byte count (and therefore
        // the running descriptor) exactly.
        spec.stages.push_back(std::move(st));
    }
    return spec;
}

/**
 * Random but well-formed SystemConfig drawn from @p rng: an
 * accelerator-backed placement, 1-4 app instances, 1-3 requests each.
 */
inline sys::SystemConfig
randomSystemConfig(Rng &rng)
{
    static constexpr sys::Placement placements[] = {
        sys::Placement::MultiAxl,       sys::Placement::IntegratedDrx,
        sys::Placement::StandaloneDrx,  sys::Placement::BumpInTheWire,
        sys::Placement::PcieIntegrated,
    };
    sys::SystemConfig cfg;
    cfg.placement = placements[rng.below(std::size(placements))];
    cfg.n_apps = 1 + static_cast<unsigned>(rng.below(4));
    cfg.requests_per_app = 1 + static_cast<unsigned>(rng.below(3));
    return cfg;
}

} // namespace dmx::testutil

#endif // DMX_TESTS_UTIL_RANDOM_CHAIN_HH
