/**
 * @file
 * Shared random-chain application generator for the property and
 * differential test suites: a well-formed k-kernel / (k-1)-motion chain
 * derived deterministically from a seed, so every suite that sweeps
 * "random chain configs" draws from the same family.
 */

#ifndef DMX_TESTS_UTIL_RANDOM_CHAIN_HH
#define DMX_TESTS_UTIL_RANDOM_CHAIN_HH

#include <cstdint>
#include <iterator>
#include <string>

#include "common/random.hh"
#include "common/units.hh"
#include "sys/system.hh"

namespace dmx::testutil
{

/** Random but well-formed chain app: k kernels, k-1 motions. */
inline sys::AppModel
randomChainApp(std::uint64_t seed)
{
    Rng rng(seed * 7919 + 13);
    sys::AppModel app;
    app.name = "rand" + std::to_string(seed);
    app.input_bytes = (1 + rng.below(8)) * mib;

    const unsigned k = 2 + static_cast<unsigned>(rng.below(3));
    std::uint64_t bytes = (2 + rng.below(14)) * mib;
    for (unsigned i = 0; i < k; ++i) {
        sys::KernelTiming kt;
        kt.name = "k" + std::to_string(i);
        kt.cpu_core_seconds = rng.uniform(0.002, 0.02);
        kt.accel_cycles = 100'000 + rng.below(900'000);
        kt.accel_freq_hz = 250e6;
        kt.out_bytes = bytes;
        app.kernels.push_back(kt);

        if (i + 1 < k) {
            sys::MotionTiming m;
            m.name = "m" + std::to_string(i);
            m.cpu_core_seconds = rng.uniform(0.005, 0.04);
            m.drx_cycles = 200'000 + rng.below(1'500'000);
            m.in_bytes = bytes;
            bytes = (1 + rng.below(10)) * mib;
            m.out_bytes = bytes;
            app.motions.push_back(m);
        }
    }
    return app;
}

/**
 * Random but well-formed SystemConfig drawn from @p rng: an
 * accelerator-backed placement, 1-4 app instances, 1-3 requests each.
 */
inline sys::SystemConfig
randomSystemConfig(Rng &rng)
{
    static constexpr sys::Placement placements[] = {
        sys::Placement::MultiAxl,       sys::Placement::IntegratedDrx,
        sys::Placement::StandaloneDrx,  sys::Placement::BumpInTheWire,
        sys::Placement::PcieIntegrated,
    };
    sys::SystemConfig cfg;
    cfg.placement = placements[rng.below(std::size(placements))];
    cfg.n_apps = 1 + static_cast<unsigned>(rng.below(4));
    cfg.requests_per_app = 1 + static_cast<unsigned>(rng.below(3));
    return cfg;
}

} // namespace dmx::testutil

#endif // DMX_TESTS_UTIL_RANDOM_CHAIN_HH
