/**
 * @file
 * Tests for the OpenCL-style runtime: functional correctness of
 * end-to-end pipelines through the API, command ordering, timing
 * advance, and error handling.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "kernels/fft.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"
#include "runtime/runtime.hh"

using namespace dmx;
using namespace dmx::runtime;

namespace
{

/** A kernel that doubles every float. */
Bytes
doubler(const Bytes &in, kernels::OpCount &ops)
{
    Bytes out = in;
    for (std::size_t i = 0; i + 4 <= out.size(); i += 4) {
        float v;
        std::memcpy(&v, &out[i], 4);
        v *= 2.0f;
        std::memcpy(&out[i], &v, 4);
    }
    ops.flops += out.size() / 4;
    ops.bytes_read += in.size();
    ops.bytes_written += out.size();
    return out;
}

Bytes
floatBytes(const std::vector<float> &v)
{
    Bytes b(v.size() * 4);
    std::memcpy(b.data(), v.data(), b.size());
    return b;
}

std::vector<float>
toFloats(const Bytes &b)
{
    std::vector<float> v(b.size() / 4);
    std::memcpy(v.data(), b.data(), b.size());
    return v;
}

} // namespace

TEST(Runtime, KernelExecutesFunctionally)
{
    Platform plat;
    const DeviceId dev =
        plat.addAccelerator("fft0", accel::Domain::FFT, doubler);
    Context ctx = plat.createContext();
    const BufferId in = ctx.createBuffer(floatBytes({1, 2, 3}));
    const BufferId out = ctx.createBuffer();

    Event ev = ctx.queue(dev).enqueueKernel(in, out);
    EXPECT_FALSE(ev.complete());
    ctx.finish();
    EXPECT_TRUE(ev.complete());
    EXPECT_EQ(toFloats(ctx.read(out)), (std::vector<float>{2, 4, 6}));
    EXPECT_GT(ev.completeTime(), 0u);
}

TEST(Runtime, InOrderQueueChainsCommands)
{
    Platform plat;
    const DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::SVM, doubler);
    Context ctx = plat.createContext();
    const BufferId buf = ctx.createBuffer(floatBytes({1}));
    const BufferId mid = ctx.createBuffer();
    const BufferId out = ctx.createBuffer();

    Event e1 = ctx.queue(dev).enqueueKernel(buf, mid);
    Event e2 = ctx.queue(dev).enqueueKernel(mid, out);
    ctx.finish();
    EXPECT_TRUE(e1.complete());
    EXPECT_TRUE(e2.complete());
    EXPECT_GE(e2.completeTime(), e1.completeTime());
    EXPECT_EQ(toFloats(ctx.read(out)), (std::vector<float>{4}));
}

TEST(Runtime, RestructureOnDrxMatchesCpuExecutor)
{
    Platform plat;
    const DeviceId drx = plat.addDrx("drx0", {});
    Context ctx = plat.createContext();

    const auto kernel = restructure::melSpectrogram(8, 64, 16);
    // Finite float input (raw byte noise would decode to NaNs, for
    // which banded and dense summation legitimately differ).
    std::vector<float> vals(kernel.input.elems());
    for (std::size_t i = 0; i < vals.size(); ++i)
        vals[i] = std::sin(static_cast<float>(i) * 0.13f);
    restructure::Bytes input(kernel.input.bytes());
    std::memcpy(input.data(), vals.data(), input.size());

    const BufferId in = ctx.createBuffer(input);
    const BufferId out = ctx.createBuffer();
    ctx.queue(drx).enqueueRestructure(kernel, in, out);
    ctx.finish();

    EXPECT_EQ(ctx.read(out), restructure::executeOnCpu(kernel, input));
}

TEST(Runtime, CopyMovesDataAndTakesTime)
{
    Platform plat;
    const DeviceId a =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    const DeviceId b =
        plat.addAccelerator("a1", accel::Domain::SVM, doubler);
    Context ctx = plat.createContext();
    const Bytes payload(4 * mib, 0x77);
    const BufferId src = ctx.createBuffer(payload);
    const BufferId dst = ctx.createBuffer();

    Event ev = ctx.queue(a).enqueueCopy(src, dst, b);
    ctx.finish();
    EXPECT_TRUE(ev.complete());
    EXPECT_EQ(ctx.read(dst), payload);
    // 4 MiB over a x16 Gen3 link takes at least ~250 us.
    EXPECT_GT(ev.completeTime(), 200 * tick_per_us);
}

TEST(Runtime, EndToEndSoundPipeline)
{
    // FFT accel -> DRX mel restructure -> "SVM" accel, all through the
    // public API, with correct data at each hop.
    constexpr std::size_t frames = 8, bins = 65, mels = 16;

    Platform plat;
    const DeviceId fft_dev = plat.addAccelerator(
        "fft0", accel::Domain::FFT,
        [&](const Bytes &in, kernels::OpCount &ops) {
            // Per-frame FFT over 128-sample windows.
            auto samples = toFloats(in);
            std::vector<float> out;
            for (std::size_t f = 0; f < frames; ++f) {
                std::vector<kernels::Complex> frame(128);
                for (std::size_t i = 0; i < 128; ++i)
                    frame[i] = kernels::Complex(samples[f * 128 + i], 0);
                ops += kernels::fft(frame);
                for (std::size_t b = 0; b < bins; ++b) {
                    out.push_back(frame[b].real());
                    out.push_back(frame[b].imag());
                }
            }
            return floatBytes(out);
        });
    const DeviceId drx_dev = plat.addDrx("drx0", {});
    const DeviceId svm_dev =
        plat.addAccelerator("svm0", accel::Domain::SVM, doubler);

    Context ctx = plat.createContext();
    std::vector<float> audio(frames * 128);
    for (std::size_t i = 0; i < audio.size(); ++i)
        audio[i] = std::sin(0.3f * static_cast<float>(i));
    const BufferId b_audio = ctx.createBuffer(floatBytes(audio));
    const BufferId b_spec = ctx.createBuffer();
    const BufferId b_spec_drx = ctx.createBuffer();
    const BufferId b_mel = ctx.createBuffer();
    const BufferId b_mel_svm = ctx.createBuffer();
    const BufferId b_out = ctx.createBuffer();

    ctx.queue(fft_dev).enqueueKernel(b_audio, b_spec);
    ctx.queue(fft_dev).enqueueCopy(b_spec, b_spec_drx, drx_dev);
    // The DRX queue must wait for the copy; chain via the fft queue's
    // ordering by enqueueing after finish of the copy event: here we
    // simply drain first (host-controlled dependency).
    ctx.finish();

    const auto mel_kernel =
        restructure::melSpectrogram(frames, bins, mels);
    ctx.queue(drx_dev).enqueueRestructure(mel_kernel, b_spec_drx, b_mel);
    ctx.queue(drx_dev).enqueueCopy(b_mel, b_mel_svm, svm_dev);
    ctx.finish();

    Event done = ctx.queue(svm_dev).enqueueKernel(b_mel_svm, b_out);
    ctx.finish();

    ASSERT_TRUE(done.complete());
    // Validate against the pure-CPU reference of the same pipeline.
    const auto spec = ctx.read(b_spec);
    const auto expect_mel =
        restructure::executeOnCpu(mel_kernel, spec);
    EXPECT_EQ(ctx.read(b_mel), expect_mel);
    EXPECT_EQ(ctx.read(b_out).size(), expect_mel.size());
    EXPECT_GT(plat.now(), 0u);
}

TEST(Runtime, ErrorsOnWrongDeviceKind)
{
    Platform plat;
    const DeviceId acc =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    const DeviceId drx = plat.addDrx("d0", {});
    Context ctx = plat.createContext();
    const BufferId b = ctx.createBuffer(Bytes(16));
    EXPECT_THROW(ctx.queue(drx).enqueueKernel(b, b),
                 std::runtime_error);
    EXPECT_THROW(ctx.queue(acc).enqueueRestructure(
                     restructure::melSpectrogram(2, 4, 2), b, b),
                 std::runtime_error);
}

TEST(Runtime, ErrorsOnBadHandles)
{
    Platform plat;
    plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    Context ctx = plat.createContext();
    EXPECT_THROW(ctx.read(42), std::runtime_error);
    EXPECT_THROW(ctx.queue(42), std::runtime_error);
    EXPECT_THROW(plat.deviceName(42), std::runtime_error);
}

TEST(Runtime, CompleteTimeRefusedUntilSettled)
{
    // Asking a completion time of an event that never settled is a
    // caller bug reported as an error, never a garbage tick.
    Event invalid;
    EXPECT_FALSE(invalid.valid());
    EXPECT_THROW(invalid.completeTime(), std::runtime_error);

    Platform plat;
    const DeviceId dev =
        plat.addAccelerator("a0", accel::Domain::FFT, doubler);
    Context ctx = plat.createContext();
    const BufferId in = ctx.createBuffer(Bytes(64, 1));
    const BufferId out = ctx.createBuffer();
    Event ev = ctx.queue(dev).enqueueKernel(in, out);
    // Enqueued but not yet simulated: still pending.
    EXPECT_TRUE(ev.valid());
    EXPECT_FALSE(ev.complete());
    EXPECT_THROW(ev.completeTime(), std::runtime_error);

    ctx.finish();
    EXPECT_TRUE(ev.complete());
    EXPECT_NO_THROW(ev.completeTime());
    EXPECT_GT(ev.completeTime(), 0u);

    // The throwing path must leave the event usable.
    Event still_pending;
    EXPECT_THROW(still_pending.completeTime(), std::runtime_error);
    EXPECT_EQ(still_pending.status(), Status::Pending);
}
