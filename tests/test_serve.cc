/**
 * @file
 * Tests for the serving layer (src/serve): trace generation, retry
 * budgets, brownout control, hedged requests, the runtime retry-policy
 * hook, and the engine-level contracts — serving disabled is
 * byte-identical to sys::simulateOverload, equal configs are
 * byte-identical at any --jobs level (including under randomized fault
 * plans), hedge cancellation never double-counts a request, retry
 * budgets bound attempt amplification exactly, brownout enters and
 * exits deterministically with pinned hysteresis, and the headline
 * tail-tolerance contract holds at 2x load with 10% faults.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/scenario.hh"
#include "fault/fault.hh"
#include "runtime/runtime.hh"
#include "serve/brownout.hh"
#include "serve/budget.hh"
#include "serve/serve.hh"
#include "serve/trace_gen.hh"
#include "sys/overload.hh"
#include "trace/trace.hh"

using namespace dmx;
using namespace dmx::serve;

namespace
{

/** Every field of two overload-stat blocks must match exactly. */
void
expectBaseEq(const sys::OverloadStats &a, const sys::OverloadStats &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.goodput_rps, b.goodput_rps);
    EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
    EXPECT_EQ(a.p99_latency_ms, b.p99_latency_ms);
    EXPECT_EQ(a.makespan_ms, b.makespan_ms);
    EXPECT_EQ(a.queue_overflows, b.queue_overflows);
    EXPECT_EQ(a.ring_credit_window, b.ring_credit_window);
    EXPECT_EQ(a.max_ring_high_water, b.max_ring_high_water);
    EXPECT_EQ(a.backpressure_stalls, b.backpressure_stalls);
    EXPECT_EQ(a.backpressure_stall_ms, b.backpressure_stall_ms);
    EXPECT_EQ(a.breaker_opens, b.breaker_opens);
    EXPECT_EQ(a.breaker_fast_fails, b.breaker_fast_fails);
    EXPECT_EQ(a.breaker_open_ms, b.breaker_open_ms);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.watchdog_timeouts, b.watchdog_timeouts);
    EXPECT_EQ(a.completed_latency.count, b.completed_latency.count);
    EXPECT_EQ(a.completed_latency.mean_ms, b.completed_latency.mean_ms);
    EXPECT_EQ(a.completed_latency.p50_ms, b.completed_latency.p50_ms);
    EXPECT_EQ(a.completed_latency.p99_ms, b.completed_latency.p99_ms);
    EXPECT_EQ(a.completed_latency.p999_ms, b.completed_latency.p999_ms);
    EXPECT_EQ(a.shed_latency.count, b.shed_latency.count);
    EXPECT_EQ(a.shed_latency.p99_ms, b.shed_latency.p99_ms);
    EXPECT_EQ(a.timeout_latency.count, b.timeout_latency.count);
    EXPECT_EQ(a.timeout_latency.p99_ms, b.timeout_latency.p99_ms);
}

/** The protection stack stress_overload sweeps. */
robust::RobustConfig
protectedConfig()
{
    robust::RobustConfig rc;
    rc.backpressure.enabled = true;
    rc.admission.policy = robust::AdmissionPolicy::StaticCap;
    rc.admission.queue_depth_cap = 4;
    rc.breaker.enabled = true;
    return rc;
}

/** Per-class conservation: every offered request ends in one bucket. */
void
expectClassConservation(const ServeStats &st)
{
    for (const ClassStats *c :
         {&st.latency_sensitive, &st.batch}) {
        EXPECT_EQ(c->offered,
                  c->completed + c->shed + c->failed + c->timed_out);
        EXPECT_EQ(c->latency.count, c->completed);
    }
    EXPECT_EQ(st.latency_sensitive.offered + st.batch.offered,
              st.base.offered);
    EXPECT_EQ(st.latency_sensitive.completed + st.batch.completed,
              st.base.completed);
}

/** A kernel that increments every byte (runtime hook tests). */
runtime::Bytes
bump(const runtime::Bytes &in, kernels::OpCount &ops)
{
    runtime::Bytes out = in;
    for (auto &b : out)
        ++b;
    ops.int_ops += out.size();
    ops.bytes_read += in.size();
    ops.bytes_written += out.size();
    return out;
}

} // namespace

// ------------------------------------------------------------------
// Serving disabled == sys::simulateOverload, byte for byte.

TEST(ServeDifferential, DisabledMatchesOverloadEngineFaultFree)
{
    sys::OverloadConfig oc;
    oc.load = 2.0;
    ServeConfig sc;
    sc.overload = oc;

    const sys::OverloadStats legacy = sys::simulateOverload(oc);
    const ServeStats serve = simulateServing(sc);
    expectBaseEq(serve.base, legacy);
    EXPECT_EQ(serve.hedges_issued, 0u);
    EXPECT_EQ(serve.budget_granted, 0u);
    EXPECT_EQ(serve.brownout_escalations, 0u);
}

TEST(ServeDifferential, DisabledMatchesOverloadEngineUnderFaults)
{
    sys::OverloadConfig oc;
    oc.load = 2.0;
    oc.fault_rate = 0.1;
    ServeConfig sc;
    sc.overload = oc;

    expectBaseEq(simulateServing(sc).base, sys::simulateOverload(oc));
}

TEST(ServeDifferential, DisabledMatchesOverloadEngineProtected)
{
    sys::OverloadConfig oc;
    oc.load = 3.0;
    oc.fault_rate = 0.1;
    oc.robust = protectedConfig();
    oc.deadline_factor = 16;
    ServeConfig sc;
    sc.overload = oc;

    const sys::OverloadStats legacy = sys::simulateOverload(oc);
    expectBaseEq(simulateServing(sc).base, legacy);
    // The protected point actually exercises the protection machinery.
    EXPECT_GT(legacy.shed, 0u);
}

TEST(ServeDifferential, DisabledMatchesOverloadEngineAcrossSeeds)
{
    for (const std::uint64_t seed : {2ull, 3ull, 17ull}) {
        sys::OverloadConfig oc;
        oc.seed = seed;
        oc.load = 1.5;
        oc.fault_rate = 0.5;
        ServeConfig sc;
        sc.overload = oc;
        const ServeStats st = simulateServing(sc);
        expectBaseEq(st.base, sys::simulateOverload(oc));
        expectClassConservation(st);
    }
}

// ------------------------------------------------------------------
// Determinism: byte-identical at any --jobs level, including under
// randomized fault plans, and across repeat runs.

TEST(ServeDeterminism, JobsInvariantUnderRandomizedFaultPlans)
{
    constexpr std::size_t kScenarios = 6;
    const auto fn = std::function<std::vector<double>(
        exec::ScenarioContext &, std::size_t)>(
        [](exec::ScenarioContext &, std::size_t i) {
            ServeConfig cfg;
            cfg.enabled = true;
            cfg.overload.requests = 96;
            cfg.overload.seed = 100 + i; // randomized fault plan per
                                         // scenario (seeded streams)
            cfg.overload.load = 0.5 + 0.5 * static_cast<double>(i);
            cfg.overload.fault_rate = i % 2 ? 0.3 : 0.1;
            cfg.trace.shape = static_cast<TraceShape>(i % 4);
            cfg.hedge.enabled = true;
            cfg.budget.enabled = true;
            cfg.brownout.enabled = true;
            return flatten(simulateServing(cfg));
        });

    exec::ScenarioRunner serial(1), pooled(8);
    const auto a = serial.map<std::vector<double>>(kScenarios, fn);
    const auto b = pooled.map<std::vector<double>>(kScenarios, fn);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].size(), b[i].size()) << "scenario " << i;
        for (std::size_t k = 0; k < a[i].size(); ++k)
            EXPECT_EQ(a[i][k], b[i][k])
                << "scenario " << i << " field " << k;
    }
}

TEST(ServeDeterminism, RepeatRunsAreByteIdentical)
{
    ServeConfig cfg;
    cfg.enabled = true;
    cfg.overload.load = 2.0;
    cfg.overload.fault_rate = 0.1;
    cfg.hedge.enabled = true;
    cfg.budget.enabled = true;
    cfg.brownout.enabled = true;

    const std::vector<double> a = flatten(simulateServing(cfg));
    const std::vector<double> b = flatten(simulateServing(cfg));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k)
        EXPECT_EQ(a[k], b[k]) << "field " << k;
}

// ------------------------------------------------------------------
// Trace generation.

TEST(ServeTrace, SteadyReproducesTheUniformClock)
{
    TraceConfig tc;
    const auto arr = generateArrivals(tc, 32, 1000, 4096, 32768, 1);
    ASSERT_EQ(arr.size(), 32u);
    for (unsigned i = 0; i < arr.size(); ++i) {
        EXPECT_EQ(arr[i].at, static_cast<Tick>(i) * 1000);
        EXPECT_EQ(arr[i].bytes, 4096u);
        EXPECT_EQ(arr[i].tenant, i % tc.tenants);
    }
}

TEST(ServeTrace, ClassSplitFollowsBatchFraction)
{
    TraceConfig tc;
    tc.tenants = 4;
    tc.batch_fraction = 0.5;
    EXPECT_EQ(classOf(tc, 0), SloClass::LatencySensitive);
    EXPECT_EQ(classOf(tc, 1), SloClass::LatencySensitive);
    EXPECT_EQ(classOf(tc, 2), SloClass::Batch);
    EXPECT_EQ(classOf(tc, 3), SloClass::Batch);

    tc.batch_fraction = 0;
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(classOf(tc, t), SloClass::LatencySensitive);

    tc.batch_fraction = 1.0;
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(classOf(tc, t), SloClass::Batch);
}

TEST(ServeTrace, DiurnalTroughStretchesGaps)
{
    TraceConfig tc;
    tc.shape = TraceShape::Diurnal;
    tc.diurnal_depth = 0.5;
    tc.diurnal_cycles = 1;
    const auto arr = generateArrivals(tc, 100, 1000, 4096, 32768, 1);
    // Peak gap (trace start) is the baseline; the trough gap (middle
    // of the single cycle) is baseline / (1 - depth) = 2x.
    const Tick first_gap = arr[1].at - arr[0].at;
    const Tick mid_gap = arr[50].at - arr[49].at;
    EXPECT_EQ(first_gap, 1000u);
    EXPECT_GT(mid_gap, static_cast<Tick>(1.9 * 1000));
    // Arrival times are strictly monotone.
    for (std::size_t i = 1; i < arr.size(); ++i)
        EXPECT_GT(arr[i].at, arr[i - 1].at);
}

TEST(ServeTrace, FlashCrowdCompressesItsWindow)
{
    TraceConfig tc;
    tc.shape = TraceShape::FlashCrowd;
    tc.flash_start = 0.5;
    tc.flash_length = 0.25;
    tc.flash_multiplier = 4.0;
    const auto arr = generateArrivals(tc, 100, 1000, 4096, 32768, 1);
    EXPECT_EQ(arr[10].at - arr[9].at, 1000u);  // before the crowd
    EXPECT_EQ(arr[60].at - arr[59].at, 250u);  // inside: 4x faster
    EXPECT_EQ(arr[90].at - arr[89].at, 1000u); // after
}

TEST(ServeTrace, HeavyTailSizesBoundedAndSeeded)
{
    TraceConfig tc;
    tc.shape = TraceShape::HeavyTail;
    tc.tail_max_multiplier = 4.0;
    const auto a = generateArrivals(tc, 200, 1000, 4096, 32768, 7);
    const auto b = generateArrivals(tc, 200, 1000, 4096, 32768, 7);
    const auto c = generateArrivals(tc, 200, 1000, 4096, 32768, 8);
    bool any_elephant = false, differs = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, static_cast<Tick>(i) * 1000); // steady clock
        EXPECT_GE(a[i].bytes, 4096u);   // multiplier >= 1
        EXPECT_LE(a[i].bytes, 16384u);  // request_bytes * max_mult
        EXPECT_EQ(a[i].bytes, b[i].bytes); // same seed, same trace
        any_elephant |= a[i].bytes > 2 * 4096;
        differs |= a[i].bytes != c[i].bytes;
    }
    EXPECT_TRUE(any_elephant);
    EXPECT_TRUE(differs); // different seed, different sizes
}

// ------------------------------------------------------------------
// Retry budget token bucket.

TEST(ServeBudget, TokenBucketAccountingIsExact)
{
    RetryBudgetConfig bc;
    bc.per_request = 0.5;
    bc.burst = 100;
    RetryBudget budget(bc, 2);

    EXPECT_FALSE(budget.tryConsume(0)); // empty bucket fails fast
    budget.onOffered(0);
    budget.onOffered(0); // 1.0 token
    budget.onOffered(1); // tenant 1: 0.5 — tenants are independent
    EXPECT_TRUE(budget.tryConsume(0));
    EXPECT_FALSE(budget.tryConsume(0)); // spent
    EXPECT_FALSE(budget.tryConsume(1)); // half a token is not a token
    EXPECT_EQ(budget.tokens(0), 0.0);
    EXPECT_EQ(budget.tokens(1), 0.5);
    EXPECT_EQ(budget.granted(), 1u);
    EXPECT_EQ(budget.denied(), 3u);
}

TEST(ServeBudget, BurstCapsAccrual)
{
    RetryBudgetConfig bc;
    bc.per_request = 1.0;
    bc.burst = 2.0;
    RetryBudget budget(bc, 1);
    for (int i = 0; i < 10; ++i)
        budget.onOffered(0);
    EXPECT_EQ(budget.tokens(0), 2.0); // clamped at burst
    EXPECT_TRUE(budget.tryConsume(0));
    EXPECT_TRUE(budget.tryConsume(0));
    EXPECT_FALSE(budget.tryConsume(0));
}

// ------------------------------------------------------------------
// Runtime retry-policy hook.

TEST(ServeRuntimeHook, DenyingPolicyFailsFastAndCounts)
{
    runtime::Platform plat;
    const auto id =
        plat.addAccelerator("a0", accel::Domain::Crypto, bump);
    fault::FaultSpec spec;
    spec.seed = 7;
    spec.kernel_fail_prob = 1.0;
    spec.unhealthy_threshold = 1'000'000; // no health fast-fail
    fault::FaultPlan plan(spec);
    plat.setFaultPlan(&plan);

    std::uint64_t seen_tag = 0;
    plat.setRetryPolicy([&seen_tag](runtime::Context &ctx,
                                    runtime::DeviceId, unsigned) {
        seen_tag = ctx.tag();
        return false;
    });

    runtime::Context ctx = plat.createContext();
    ctx.setTag(42);
    const auto in = ctx.createBuffer(runtime::Bytes(64, 1));
    const auto out = ctx.createBuffer();
    const runtime::Event ev = ctx.queue(id).enqueueKernel(in, out);
    ctx.finish();

    EXPECT_EQ(ev.status(), runtime::Status::Failed);
    EXPECT_EQ(ev.retries(), 0u); // denied before the first retry
    EXPECT_EQ(seen_tag, 42u);    // the policy sees the tenant tag
    EXPECT_EQ(plat.faultStats(id).retries_denied, 1u);
    EXPECT_EQ(plat.faultStats(id).attempts, 1u);
    EXPECT_EQ(plat.faultStats(id).retries, 0u);
}

TEST(ServeRuntimeHook, GrantingPolicyIsLegacyExact)
{
    const auto run = [](bool install) {
        runtime::Platform plat;
        const auto id =
            plat.addAccelerator("a0", accel::Domain::Crypto, bump);
        fault::FaultSpec spec;
        spec.seed = 7;
        spec.kernel_fail_prob = 1.0;
        spec.unhealthy_threshold = 1'000'000;
        fault::FaultPlan plan(spec);
        plat.setFaultPlan(&plan);
        if (install)
            plat.setRetryPolicy([](runtime::Context &,
                                   runtime::DeviceId,
                                   unsigned) { return true; });
        runtime::Context ctx = plat.createContext();
        const auto in = ctx.createBuffer(runtime::Bytes(64, 1));
        const auto out = ctx.createBuffer();
        const runtime::Event ev = ctx.queue(id).enqueueKernel(in, out);
        ctx.finish();
        return std::make_tuple(ev.status(), ev.retries(),
                               plat.faultStats(id).attempts,
                               plat.now());
    };
    // An always-grant policy changes nothing: same status, same retry
    // count, same attempt count, same simulated end time.
    EXPECT_EQ(run(true), run(false));
}

// ------------------------------------------------------------------
// Hedged requests.

TEST(ServeHedge, RescuesHungRequestsAndCutsTheTail)
{
    ServeConfig plain;
    plain.enabled = true;
    plain.overload.load = 1.0;
    plain.overload.fault_rate = 0.1;
    ServeConfig hedged = plain;
    hedged.hedge.enabled = true;

    const ServeStats p = simulateServing(plain);
    const ServeStats h = simulateServing(hedged);
    EXPECT_GT(h.hedges_issued, 0u);
    EXPECT_GT(h.hedges_won, 0u);
    // Hang-stalled requests settle from the healthy duplicate long
    // before the watchdog: the completed-latency tail collapses.
    EXPECT_LT(h.latency_sensitive.latency.p999_ms,
              p.latency_sensitive.latency.p999_ms);
    EXPECT_GE(h.base.completed, p.base.completed);
}

TEST(ServeHedge, CancellationNeverDoubleCounts)
{
    for (const double load : {1.0, 2.0}) {
        for (const double fault : {0.1, 0.5}) {
            ServeConfig cfg;
            cfg.enabled = true;
            cfg.overload.load = load;
            cfg.overload.fault_rate = fault;
            cfg.hedge.enabled = true;
            const ServeStats st = simulateServing(cfg);
            // Conservation per class and overall: a request settles in
            // exactly one terminal bucket even when both arms run.
            expectClassConservation(st);
            EXPECT_EQ(st.base.offered,
                      static_cast<std::uint64_t>(
                          cfg.overload.requests));
            EXPECT_EQ(st.base.offered,
                      st.base.completed + st.base.shed +
                          st.base.failed + st.base.timed_out);
            // Wins and cancellations are hedges, not extra requests.
            EXPECT_LE(st.hedges_won, st.hedges_issued);
            EXPECT_LE(st.hedges_cancelled, st.hedges_issued);
        }
    }
}

TEST(ServeHedge, ZeroBudgetDeniesEveryHedge)
{
    ServeConfig cfg;
    cfg.enabled = true;
    cfg.overload.load = 1.0;
    cfg.overload.fault_rate = 0.1;
    cfg.hedge.enabled = true;
    cfg.budget.enabled = true;
    cfg.budget.per_request = 0; // nothing ever accrues

    const ServeStats st = simulateServing(cfg);
    EXPECT_EQ(st.hedges_issued, 0u);
    EXPECT_GT(st.hedges_denied, 0u); // triggers fired, budget refused
    EXPECT_EQ(st.budget_granted, 0u);
    EXPECT_GT(st.budget_denied, 0u);
    expectClassConservation(st);
}

// ------------------------------------------------------------------
// Retry-storm amplification and the exact budget bound.

TEST(ServeAmplification, UnbudgetedAttemptsGrowSuperlinearlyWithLoad)
{
    const auto attempts = [](double load) {
        ServeConfig cfg;
        cfg.enabled = true;
        cfg.overload.load = load;
        cfg.overload.fault_rate = 0.1;
        cfg.hedge.enabled = true; // unbudgeted hedging + retries
        return simulateServing(cfg).total_attempts;
    };
    const std::uint64_t a05 = attempts(0.5);
    const std::uint64_t a10 = attempts(1.0);
    const std::uint64_t a20 = attempts(2.0);
    // Offered work is constant; attempts still accelerate with load:
    // each doubling adds more attempts than the previous one.
    EXPECT_GT(a10, a05);
    EXPECT_GT(a20, a10);
    EXPECT_GT(a20 - a10, a10 - a05);
}

TEST(ServeAmplification, BudgetBoundsAttemptsExactly)
{
    // All-fail faults, no hangs, no health fast-fail: every command
    // retries until something says stop.
    ServeConfig cfg;
    cfg.enabled = true;
    cfg.overload.requests = 160;
    cfg.overload.load = 2.0;
    cfg.overload.fault_rate = 1.0;
    cfg.fault_hang_fraction = 0;
    cfg.unhealthy_threshold = 1'000'000;

    // Unbudgeted: the runtime retry budget is the only stop — every
    // command makes exactly 1 + max_retries attempts.
    const ServeStats unbudgeted = simulateServing(cfg);
    const std::uint64_t offered = unbudgeted.base.offered;
    EXPECT_EQ(offered, 160u);
    EXPECT_EQ(unbudgeted.total_attempts, offered * 4); // max_retries 3

    // Budgeted at one token per offered request: total attempts are
    // offered * (1 + budget), exactly — every accrued token is spent
    // by a still-hungry command, and nothing beyond them is granted.
    ServeConfig budgeted = cfg;
    budgeted.budget.enabled = true;
    budgeted.budget.per_request = 1.0;
    budgeted.budget.burst = 1e9;
    const ServeStats b = simulateServing(budgeted);
    EXPECT_EQ(b.base.offered, offered);
    EXPECT_EQ(b.total_attempts, offered * 2); // offered * (1 + 1.0)
    EXPECT_EQ(b.budget_granted, offered);
    EXPECT_GT(b.retries_denied, 0u);

    // Half a token per request, even per-tenant counts: still exact.
    ServeConfig half = cfg;
    half.budget.enabled = true;
    half.budget.per_request = 0.5;
    half.budget.burst = 1e9;
    const ServeStats h = simulateServing(half);
    EXPECT_EQ(h.total_attempts, offered + offered / 2);
}

// ------------------------------------------------------------------
// Brownout controller.

TEST(ServeBrownout, LadderEscalatesOneLevelPerStreak)
{
    BrownoutController c(800, 200, 3, 3);
    EXPECT_EQ(c.level(), BrownoutLevel::Normal);
    c.evaluate(900);
    c.evaluate(900);
    EXPECT_EQ(c.level(), BrownoutLevel::Normal); // streak of 2 < 3
    EXPECT_EQ(c.evaluate(900), BrownoutLevel::ShedBatch);
    c.evaluate(900);
    c.evaluate(900);
    EXPECT_EQ(c.evaluate(900), BrownoutLevel::Degraded);
    c.evaluate(900);
    c.evaluate(900);
    EXPECT_EQ(c.evaluate(900), BrownoutLevel::FailFast);
    // The ladder tops out; further pressure holds FailFast.
    c.evaluate(900);
    c.evaluate(900);
    EXPECT_EQ(c.evaluate(900), BrownoutLevel::FailFast);
    EXPECT_EQ(c.escalations(), 3u);
    EXPECT_EQ(c.deescalations(), 0u);
}

TEST(ServeBrownout, RecoversInReverseOrderWithHysteresis)
{
    BrownoutController c(800, 200, 1, 2);
    c.evaluate(900); // -> ShedBatch
    c.evaluate(900); // -> Degraded
    EXPECT_EQ(c.level(), BrownoutLevel::Degraded);
    c.evaluate(100);
    EXPECT_EQ(c.level(), BrownoutLevel::Degraded); // streak of 1 < 2
    EXPECT_EQ(c.evaluate(100), BrownoutLevel::ShedBatch);
    c.evaluate(100);
    EXPECT_EQ(c.evaluate(100), BrownoutLevel::Normal);
    EXPECT_EQ(c.escalations(), 2u);
    EXPECT_EQ(c.deescalations(), 2u);
}

TEST(ServeBrownout, DeadBandHoldsLevelAndResetsStreaks)
{
    BrownoutController c(800, 200, 2, 2);
    c.evaluate(900);
    c.evaluate(500); // dead band: resets the escalation streak
    c.evaluate(900);
    EXPECT_EQ(c.level(), BrownoutLevel::Normal); // never two in a row
    c.evaluate(900);
    EXPECT_EQ(c.level(), BrownoutLevel::ShedBatch);
    c.evaluate(100);
    c.evaluate(500); // dead band: resets the recovery streak too
    c.evaluate(100);
    EXPECT_EQ(c.level(), BrownoutLevel::ShedBatch);
    EXPECT_EQ(c.escalations(), 1u);
    EXPECT_EQ(c.deescalations(), 0u);
}

TEST(ServeBrownout, ShedsBatchClassFirstUnderSustainedOverload)
{
    ServeConfig cfg;
    cfg.enabled = true;
    cfg.overload.requests = 240;
    cfg.overload.load = 3.0;
    cfg.brownout.enabled = true;

    const ServeStats st = simulateServing(cfg);
    EXPECT_GT(st.brownout_escalations, 0u);
    EXPECT_GT(st.brownout_shed_batch, 0u);
    EXPECT_GT(st.batch.shed, 0u);
    // Batch degrades before latency-sensitive: LS is only shed once
    // the ladder reaches FailFast.
    if (st.brownout_shed_all == 0) {
        EXPECT_EQ(st.latency_sensitive.shed, 0u);
    }
    expectClassConservation(st);

    // Deterministic: the same config replays the same ladder.
    const ServeStats again = simulateServing(cfg);
    EXPECT_EQ(st.brownout_escalations, again.brownout_escalations);
    EXPECT_EQ(st.brownout_deescalations, again.brownout_deescalations);
    EXPECT_EQ(st.brownout_shed_batch, again.brownout_shed_batch);
}

// ------------------------------------------------------------------
// SLO accounting, the Serve trace category, and the headline contract.

TEST(ServeSlo, AttainmentIsBoundedAndPerfectWhenIdle)
{
    ServeConfig cfg;
    cfg.enabled = true;
    cfg.overload.load = 0.5;
    const ServeStats st = simulateServing(cfg);
    EXPECT_EQ(st.latency_sensitive.slo_attainment, 1.0);
    EXPECT_EQ(st.batch.slo_attainment, 1.0);
    EXPECT_GT(st.latency_sensitive.slo_target_ms, 0.0);
    // Batch tolerates more than latency-sensitive by construction.
    EXPECT_GT(st.batch.slo_target_ms,
              st.latency_sensitive.slo_target_ms);

    ServeConfig hot = cfg;
    hot.overload.load = 3.0;
    hot.overload.fault_rate = 0.3;
    const ServeStats hs = simulateServing(hot);
    for (const ClassStats *c : {&hs.latency_sensitive, &hs.batch}) {
        EXPECT_GE(c->slo_attainment, 0.0);
        EXPECT_LE(c->slo_attainment, 1.0);
    }
    EXPECT_LT(hs.latency_sensitive.slo_attainment, 1.0);
}

TEST(ServeTraceCategory, ServeCategoryIsNamed)
{
    EXPECT_EQ(trace::toString(trace::Category::Serve), "serve");
}

TEST(ServeContract, HeadlineTailToleranceAtTwoXLoadTenPctFaults)
{
    const auto run = [](bool hedge, bool budget_and_brownout) {
        ServeConfig cfg;
        cfg.enabled = true;
        cfg.overload.requests = 240;
        cfg.overload.load = 2.0;
        cfg.overload.fault_rate = 0.1;
        cfg.hedge.enabled = hedge;
        if (budget_and_brownout) {
            cfg.budget.enabled = true;
            cfg.budget.per_request = 0.5;
            cfg.brownout.enabled = true;
        }
        return simulateServing(cfg);
    };
    const ServeStats plain = run(false, false);
    const ServeStats hedged = run(true, false);
    const ServeStats tail = run(true, true);

    // Hedging + budgets + brownout cut the latency-sensitive p999...
    EXPECT_LT(tail.latency_sensitive.latency.p999_ms,
              plain.latency_sensitive.latency.p999_ms);
    // ...while bounding total attempts below the unbudgeted baseline.
    EXPECT_LT(tail.total_attempts, hedged.total_attempts);
    // And the budget genuinely bit: denials happened.
    EXPECT_GT(tail.budget_denied, 0u);
}
