/**
 * @file
 * Parameterized property-style sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
 * cross-implementation equivalences and conservation laws that must hold
 * for every point of a swept parameter space.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <regex>

#include "common/dtype.hh"
#include "common/random.hh"
#include "cpu/core_pool.hh"
#include "drx/compiler.hh"
#include "exec/scenario.hh"
#include "fault/fault.hh"
#include "kernels/aes.hh"
#include "kernels/lz.hh"
#include "kernels/regex.hh"
#include "pcie/fabric.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"
#include "sys/system.hh"
#include "util_random_chain.hh"
#include "trace/trace.hh"

using namespace dmx;

namespace
{

restructure::Bytes
randomBytesFor(const restructure::BufferDesc &desc, std::uint64_t seed)
{
    Rng rng(seed);
    restructure::Bytes out(desc.bytes());
    if (desc.dtype == DType::F32) {
        for (std::size_t i = 0; i < desc.elems(); ++i) {
            const float v = static_cast<float>(rng.uniform(-3.0, 3.0));
            std::memcpy(&out[i * 4], &v, 4);
        }
    } else {
        for (auto &b : out)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return out;
}

} // namespace

// ------------------------------------------------------------------
// Property: for every catalog kernel, every DRX lane configuration
// produces the same bytes as the CPU reference executor - timing knobs
// must never change functional results.

struct DrxEquivCase
{
    const char *name;
    restructure::Kernel kernel;
    unsigned lanes;
};

class DrxLaneEquivalence : public ::testing::TestWithParam<DrxEquivCase>
{
};

TEST_P(DrxLaneEquivalence, BitExactAcrossLaneCounts)
{
    const DrxEquivCase &c = GetParam();
    const auto input = randomBytesFor(c.kernel.input, 42);
    const auto expect = restructure::executeOnCpu(c.kernel, input);

    drx::DrxConfig cfg;
    cfg.lanes = c.lanes;
    drx::DrxMachine machine(cfg);
    restructure::Bytes got;
    drx::runKernelOnDrx(c.kernel, input, machine, &got);
    EXPECT_EQ(got, expect) << c.name << " lanes=" << c.lanes;
}

namespace
{

std::vector<DrxEquivCase>
laneCases()
{
    std::vector<DrxEquivCase> cases;
    for (unsigned lanes : {16u, 64u, 128u, 256u}) {
        cases.push_back({"mel", restructure::melSpectrogram(8, 128, 16),
                         lanes});
        cases.push_back({"video",
                         restructure::videoFrameRestructure(96, 128, 32),
                         lanes});
        cases.push_back({"db",
                         restructure::dbColumnarize(512, true), lanes});
        cases.push_back({"reduce",
                         restructure::vectorReduction(4, 128), lanes});
    }
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Catalog, DrxLaneEquivalence, ::testing::ValuesIn(laneCases()),
    [](const ::testing::TestParamInfo<DrxEquivCase> &info) {
        return std::string(info.param.name) + "_lanes" +
               std::to_string(info.param.lanes);
    });

// ------------------------------------------------------------------
// Property: timing knobs (double buffering, hardware loops) change
// cycles monotonically but never the output bytes.

class DrxTimingKnobs : public ::testing::TestWithParam<int>
{
};

TEST_P(DrxTimingKnobs, KnobsPreserveFunction)
{
    const auto kernel = restructure::melSpectrogram(8, 64, 16);
    const auto input = randomBytesFor(kernel.input, 9);
    const auto expect = restructure::executeOnCpu(kernel, input);

    drx::DrxConfig cfg;
    cfg.double_buffer = GetParam() & 1;
    cfg.hardware_loops = GetParam() & 2;
    drx::DrxMachine machine(cfg);
    restructure::Bytes got;
    const drx::RunResult res =
        drx::runKernelOnDrx(kernel, input, machine, &got);
    EXPECT_EQ(got, expect);
    EXPECT_GT(res.total_cycles, 0u);
    // Total never beats the overlapped ideal.
    EXPECT_GE(res.total_cycles,
              std::max(res.compute_cycles, res.mem_cycles));
}

INSTANTIATE_TEST_SUITE_P(AllKnobCombos, DrxTimingKnobs,
                         ::testing::Range(0, 4));

// ------------------------------------------------------------------
// Property: LZ compression round-trips on adversarial data patterns.

class LzRoundTrip : public ::testing::TestWithParam<int>
{
  public:
    static kernels::Bytes
    pattern(int which)
    {
        Rng rng(static_cast<std::uint64_t>(which) + 77);
        kernels::Bytes data;
        const std::size_t n = 1000 + 517 * static_cast<std::size_t>(which);
        switch (which % 6) {
          case 0: // constant
            data.assign(n, 0x42);
            break;
          case 1: // random
            for (std::size_t i = 0; i < n; ++i)
                data.push_back(
                    static_cast<std::uint8_t>(rng.below(256)));
            break;
          case 2: // short period (overlapping matches)
            for (std::size_t i = 0; i < n; ++i)
                data.push_back(static_cast<std::uint8_t>(i % 3));
            break;
          case 3: // long period
            for (std::size_t i = 0; i < n; ++i)
                data.push_back(static_cast<std::uint8_t>((i % 300) & 0xff));
            break;
          case 4: // random runs
            while (data.size() < n) {
                const auto run = 1 + rng.below(64);
                const auto byte =
                    static_cast<std::uint8_t>(rng.below(4));
                for (std::uint64_t k = 0; k < run; ++k)
                    data.push_back(byte);
            }
            break;
          default: // text-like
            for (std::size_t i = 0; i < n; ++i)
                data.push_back(static_cast<std::uint8_t>(
                    ' ' + rng.below(64)));
            break;
        }
        return data;
    }
};

TEST_P(LzRoundTrip, DecompressInvertsCompress)
{
    const kernels::Bytes data = pattern(GetParam());
    EXPECT_EQ(kernels::lzDecompress(kernels::lzCompress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Patterns, LzRoundTrip, ::testing::Range(0, 18));

// ------------------------------------------------------------------
// Property: AES-GCM round-trips at every message size near block
// boundaries, and any single-bit flip in the ciphertext breaks the tag.

class GcmBoundary : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GcmBoundary, RoundTripAndTamperDetection)
{
    const std::size_t len = GetParam();
    Rng rng(len * 31 + 5);
    kernels::AesKey key;
    kernels::AesBlock iv{};
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.below(256));
    std::vector<std::uint8_t> pt(len);
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.below(256));

    auto sealed = kernels::gcmEncrypt(key, iv, pt);
    bool ok = false;
    EXPECT_EQ(kernels::gcmDecrypt(key, iv, sealed, ok), pt);
    EXPECT_TRUE(ok);

    if (len > 0) {
        const std::size_t byte = rng.below(len);
        sealed.ciphertext[byte] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
        kernels::gcmDecrypt(key, iv, sealed, ok);
        EXPECT_FALSE(ok) << "bit flip at byte " << byte;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmBoundary,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33,
                                           255, 256, 257, 1000));

// ------------------------------------------------------------------
// Property: the NFA regex engine agrees with std::regex (ECMAScript)
// on full-match decisions for a shared syntax subset.

struct RegexCase
{
    const char *pattern;
    const char *ecma; ///< equivalent std::regex pattern
};

class RegexVsStd
    : public ::testing::TestWithParam<RegexCase>
{
};

TEST_P(RegexVsStd, FullMatchAgreesOnRandomTexts)
{
    const RegexCase &c = GetParam();
    const kernels::Regex mine(c.pattern);
    const std::regex ref(c.ecma);

    Rng rng(1234);
    const std::string alphabet = "ab01-. x";
    for (int t = 0; t < 300; ++t) {
        std::string text;
        const auto len = rng.below(10);
        for (std::uint64_t i = 0; i < len; ++i)
            text.push_back(alphabet[rng.below(alphabet.size())]);
        EXPECT_EQ(mine.fullMatch(text),
                  std::regex_match(text, ref))
            << "pattern '" << c.pattern << "' text '" << text << "'";
    }
}

INSTANTIATE_TEST_SUITE_P(
    SharedSyntax, RegexVsStd,
    ::testing::Values(RegexCase{"a*b", "a*b"},
                      RegexCase{"(a|b)+", "(a|b)+"},
                      RegexCase{"a.b", "a.b"},
                      RegexCase{"[ab]*[01]", "[ab]*[01]"},
                      RegexCase{"\\d\\d-\\d", "\\d\\d-\\d"},
                      RegexCase{"a?b?c?", "a?b?c?"},
                      RegexCase{"(ab|ba)*", "(ab|ba)*"},
                      RegexCase{"[^ ]+", "[^ ]+"}),
    [](const ::testing::TestParamInfo<RegexCase> &info) {
        return "p" + std::to_string(info.index);
    });

// ------------------------------------------------------------------
// Property: IEEE-754 half conversion is the exact inverse of decode
// for every one of the 63488 finite half bit patterns.

TEST(HalfExhaustive, EncodeInvertsDecodeForAllFiniteHalves)
{
    for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
        const auto h = static_cast<std::uint16_t>(bits);
        if ((h & 0x7c00) == 0x7c00)
            continue; // inf/NaN: decode/encode not bijective
        const float f = halfToFloat(h);
        const std::uint16_t back = floatToHalf(f);
        // -0 and +0 both legal; everything else must round-trip.
        if ((h & 0x7fff) == 0) {
            EXPECT_EQ(back & 0x7fff, 0);
        } else {
            EXPECT_EQ(back, h) << "half bits 0x" << std::hex << h;
        }
    }
}

// ------------------------------------------------------------------
// Property: fabric flows conserve bytes and finish no faster than the
// bottleneck allows, for any number of contenders.

class FabricContention : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FabricContention, ConservationAndBottleneckBound)
{
    const unsigned flows = GetParam();
    sim::EventQueue eq;
    pcie::Fabric fab(eq, "fab");
    const auto rc = fab.addNode(pcie::NodeKind::RootComplex, "rc");
    const auto sw = fab.addNode(pcie::NodeKind::Switch, "sw");
    fab.connect(rc, sw, pcie::Generation::Gen3, 8);
    std::vector<pcie::NodeId> eps;
    for (unsigned i = 0; i < flows; ++i) {
        eps.push_back(fab.addNode(pcie::NodeKind::EndPoint,
                                  "ep" + std::to_string(i)));
        fab.connect(sw, eps.back(), pcie::Generation::Gen3, 16);
    }
    const std::uint64_t bytes = 2 * mib;
    Tick last = 0;
    unsigned done = 0;
    for (unsigned i = 0; i < flows; ++i) {
        fab.startFlow(eps[i], rc, bytes, [&] {
            ++done;
            last = std::max(last, eq.now());
        });
    }
    eq.run();
    EXPECT_EQ(done, flows);
    EXPECT_EQ(fab.totalBytes(), bytes * flows);

    // All flows share the x8 upstream: completion cannot beat the
    // aggregate bottleneck time.
    const double bottleneck_sec =
        static_cast<double>(bytes) * flows /
        pcie::linkBandwidth(pcie::Generation::Gen3, 8);
    EXPECT_GE(ticksToSeconds(last), bottleneck_sec * 0.999);
    // ... and fair sharing means it is also close to that bound.
    EXPECT_LE(ticksToSeconds(last), bottleneck_sec * 1.2);
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, FabricContention,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ------------------------------------------------------------------
// Property: the core pool conserves work - busy core-seconds equal the
// total submitted work for any job mix.

class PoolConservation : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PoolConservation, BusyCoreSecondsEqualSubmittedWork)
{
    const unsigned jobs = GetParam();
    sim::EventQueue eq;
    cpu::CorePool pool(eq, "pool", 16, 4);
    Rng rng(jobs);
    double total = 0;
    for (unsigned i = 0; i < jobs; ++i) {
        const double work = rng.uniform(0.001, 0.05);
        total += work;
        // Mix of per-job caps, submitted at staggered times.
        const double cap = (i % 3 == 0) ? 1.0 : 0.0;
        eq.schedule(static_cast<Tick>(i) * tick_per_ms,
                    [&pool, work, cap] { pool.submit(work, cap, {}); });
    }
    eq.run();
    EXPECT_EQ(pool.completedJobs(), jobs);
    EXPECT_NEAR(pool.busyCoreSeconds(), total, total * 1e-6 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(JobCounts, PoolConservation,
                         ::testing::Values(1, 4, 16, 40));

// ------------------------------------------------------------------
// Property: dtype store/load saturates exactly at the type bounds for
// a sweep of extreme values.

class DtypeSaturation
    : public ::testing::TestWithParam<std::tuple<DType, float>>
{
};

TEST_P(DtypeSaturation, LoadOfStoreIsClampedIdentity)
{
    const auto [t, v] = GetParam();
    std::uint8_t buf[8] = {};
    storeFromFloat(buf, t, v);
    const float back = loadAsFloat(buf, t);

    float lo = 0, hi = 0;
    switch (t) {
      case DType::I32: lo = -2147483648.0f; hi = 2147483647.0f; break;
      case DType::I16: lo = -32768; hi = 32767; break;
      case DType::I8:  lo = -128; hi = 127; break;
      case DType::U8:  lo = 0; hi = 255; break;
      case DType::F16: lo = -65504; hi = 65504; break;
      case DType::F32: lo = -3.4e38f; hi = 3.4e38f; break;
    }
    EXPECT_GE(back, lo);
    EXPECT_LE(back, hi);
    if (v >= lo && v <= hi && t != DType::F16 && t != DType::F32) {
        // In-range integral stores round to nearest.
        EXPECT_NEAR(back, v, 0.5f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Extremes, DtypeSaturation,
    ::testing::Combine(
        ::testing::Values(DType::F16, DType::I32, DType::I16, DType::I8,
                          DType::U8),
        ::testing::Values(-1e9f, -300.0f, -1.5f, 0.0f, 0.4f, 100.3f,
                          70000.0f, 3e9f)));

// ------------------------------------------------------------------
// Property: trace time accounting is conservative and exact. For any
// random chain configuration, per application track the recorded spans
// (Kernel / Restructure / Movement phases plus Driver notify-wait gaps)
// exactly tile the track's extent with no gaps or overlap; the
// per-category totals equal RunStats' integer-tick fields; and the
// latest span end is the simulated makespan. Integer-tick exact - no
// epsilon anywhere.

namespace
{

using testutil::randomChainApp;
using testutil::randomSystemConfig;

/**
 * Check the tiling property of @p tb against @p stats for a system of
 * @p n_apps applications.
 */
void
checkTraceTiling(const trace::TraceBuffer &tb, const sys::RunStats &stats,
                 unsigned n_apps)
{
    using trace::Category;

    // Per-category totals match RunStats tick for tick.
    EXPECT_EQ(tb.categoryTicks(Category::Kernel), stats.kernel_ticks);
    EXPECT_EQ(tb.categoryTicks(Category::Restructure),
              stats.restructure_ticks);
    EXPECT_EQ(tb.categoryTicks(Category::Movement), stats.movement_ticks);
    EXPECT_EQ(tb.maxEnd(), stats.makespan_ticks);

    // Per app track, phase + driver-gap spans tile the extent exactly.
    Tick last_app_end = 0;
    for (unsigned i = 0; i < n_apps; ++i) {
        const std::string track = "app" + std::to_string(i);
        std::vector<std::pair<Tick, Tick>> ivs;
        for (const trace::Span &s : tb.spans()) {
            if (tb.stringAt(s.track) != track)
                continue;
            const bool app_cat = s.cat == Category::Kernel ||
                                 s.cat == Category::Restructure ||
                                 s.cat == Category::Movement ||
                                 s.cat == Category::Driver;
            EXPECT_TRUE(app_cat)
                << track << " span '" << tb.stringAt(s.name)
                << "' in unexpected category";
            ivs.emplace_back(s.begin, s.end);
        }
        ASSERT_FALSE(ivs.empty()) << track;
        std::sort(ivs.begin(), ivs.end());
        Tick covered = 0;
        for (std::size_t j = 0; j < ivs.size(); ++j) {
            covered += ivs[j].second - ivs[j].first;
            if (j > 0) {
                EXPECT_EQ(ivs[j].first, ivs[j - 1].second)
                    << track << ": gap or overlap at span " << j;
            }
        }
        EXPECT_EQ(covered, ivs.back().second - ivs.front().first)
            << track;
        last_app_end = std::max(last_app_end, ivs.back().second);
    }
    // The final request completion defines the makespan.
    EXPECT_EQ(last_app_end, stats.makespan_ticks);
}

/** One point of the tiling sweep, captured for later assertion. */
struct TilingRun
{
    trace::TraceBuffer tb;
    sys::RunStats stats;
    unsigned n_apps = 0;
};

/**
 * All 12 tiling scenarios, fanned once through a ScenarioRunner (worker
 * count from DMX_JOBS / hardware). Each scenario records into its own
 * per-scenario TraceBuffer - the runner installs it as the executing
 * thread's trace sink - and the TEST_P cases below assert on the cached
 * results, so the sweep cost is paid once regardless of jobs level and
 * the recorded traces are jobs-invariant.
 */
const std::vector<TilingRun> &
tilingRuns()
{
    static const std::vector<TilingRun> runs = [] {
        exec::ScenarioRunner runner;
        return runner.map<TilingRun>(
            12, [](exec::ScenarioContext &ctx, std::size_t i) {
                const std::uint64_t seed = i;
                Rng rng(seed);
                const sys::SystemConfig cfg = randomSystemConfig(rng);
                TilingRun r;
                r.n_apps = cfg.n_apps;
                r.stats = sys::simulateSystem(cfg, {randomChainApp(seed)});
                r.tb = ctx.trace();
                return r;
            });
    }();
    return runs;
}

} // namespace

class TraceTiling : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceTiling, PhaseSpansTileAppTracksExactly)
{
    const TilingRun &r = tilingRuns()[GetParam()];
    checkTraceTiling(r.tb, r.stats, r.n_apps);
}

INSTANTIATE_TEST_SUITE_P(RandomChains, TraceTiling,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(TraceTilingFaults, HoldsUnderFaultPlanWithRetriesTraced)
{
    fault::FaultSpec spec;
    spec.seed = 7;
    spec.flow_stall_prob = 0.10;
    spec.flow_corrupt_prob = 0.05;
    spec.irq_drop_prob = 0.10;
    fault::FaultPlan plan(spec);

    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::BumpInTheWire;
    cfg.n_apps = 3;
    cfg.requests_per_app = 3;
    cfg.fault_plan = &plan;

    trace::TraceBuffer tb;
    sys::RunStats stats;
    {
        trace::TraceSession session(tb);
        stats = sys::simulateSystem(cfg, {randomChainApp(3)});
    }

    // The time-tiling property survives fault recovery: retransmission
    // time lands inside the Movement phase, recovery polls inside the
    // Driver gaps.
    checkTraceTiling(tb, stats, cfg.n_apps);

    // Retries and dropped irqs surface as trace counters matching the
    // aggregate stats, and each retry leaves a Retry-category instant.
    ASSERT_GT(stats.flow_retries, 0u);
    ASSERT_GT(stats.dropped_irqs, 0u);
    EXPECT_DOUBLE_EQ(tb.counterTotal("sys.flow_retries"),
                     static_cast<double>(stats.flow_retries));
    EXPECT_DOUBLE_EQ(tb.counterTotal("sys.dropped_irqs"),
                     static_cast<double>(stats.dropped_irqs));
    std::uint64_t retry_instants = 0;
    for (const trace::Span &s : tb.spans()) {
        if (s.cat == trace::Category::Retry) {
            EXPECT_EQ(tb.stringAt(s.name), "flow_retry");
            ++retry_instants;
        }
    }
    EXPECT_EQ(retry_instants, stats.flow_retries);
}
