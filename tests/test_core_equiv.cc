/**
 * @file
 * The fast-core differential suite (ctest label: core).
 *
 * The optimized simulator core - slot-arena event queue, SoA fabric
 * flow engine, SIMD DRX interpreter loops, sharded system execution -
 * promises *bit-for-bit* equivalence with the legacy core. This suite
 * is that promise, enforced four ways:
 *
 *  1. Event-queue property tests: the (when, prio, seq) FIFO tie-break
 *     order is pinned against a naive sorted-list reference under
 *     randomized schedule/cancel/run interleavings, in both engines.
 *  2. A 200+-scenario randomized differential: every scenario (random
 *     placement, app mix, request count; a quarter under a FaultPlan,
 *     a quarter under an IntegrityPlan) runs through the legacy and
 *     optimized cores and must produce byte-identical RunStats and
 *     byte-identical traces.
 *  3. A SIMD-vs-scalar sweep over every catalog restructuring kernel
 *     at random shapes: byte-identical outputs, identical cycle
 *     counts.
 *  4. Settle-visit regression: the optimized flow engine's completion
 *     reaping scales linearly with flow count (the legacy engine
 *     re-scans quadratically), pinned via Fabric::settleVisits().
 *  5. Sharded system contract: a single-domain partition is
 *     bit-identical to the monolithic engine, sharded runs are
 *     jobs-invariant (1 vs 8 workers), and multi-domain runs preserve
 *     the structural invariants (bytes, kernel ticks, notification
 *     counts).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"
#include "drx/compiler.hh"
#include "drx/machine.hh"
#include "fault/fault.hh"
#include "integrity/integrity.hh"
#include "pcie/fabric.hh"
#include "restructure/catalog.hh"
#include "restructure/ir.hh"
#include "sim/core.hh"
#include "sim/eventq.hh"
#include "sys/system.hh"
#include "trace/trace.hh"
#include "util_random_chain.hh"

using namespace dmx;

namespace
{

/** Restore the global core mode / SIMD flag on scope exit. */
struct CoreModeGuard
{
    ~CoreModeGuard()
    {
        sim::setCoreMode(sim::CoreMode::Optimized);
        drx::setSimdEnabled(true);
    }
};

// ------------------------------------------------------------------
// RunStats / trace equality helpers

void
expectStatsIdentical(const sys::RunStats &a, const sys::RunStats &b,
                     const std::string &ctx)
{
    SCOPED_TRACE(ctx);
    EXPECT_EQ(a.avg_latency_ms, b.avg_latency_ms);
    EXPECT_EQ(a.breakdown.kernel_ms, b.breakdown.kernel_ms);
    EXPECT_EQ(a.breakdown.restructure_ms, b.breakdown.restructure_ms);
    EXPECT_EQ(a.breakdown.movement_ms, b.breakdown.movement_ms);
    EXPECT_EQ(a.avg_throughput_rps, b.avg_throughput_rps);
    EXPECT_EQ(a.bottleneck_stage_ms, b.bottleneck_stage_ms);
    EXPECT_EQ(a.makespan_ms, b.makespan_ms);
    EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
    EXPECT_EQ(a.kernel_ticks, b.kernel_ticks);
    EXPECT_EQ(a.restructure_ticks, b.restructure_ticks);
    EXPECT_EQ(a.movement_ticks, b.movement_ticks);
    EXPECT_EQ(a.energy.host_joules, b.energy.host_joules);
    EXPECT_EQ(a.energy.accel_joules, b.energy.accel_joules);
    EXPECT_EQ(a.energy.drx_joules, b.energy.drx_joules);
    EXPECT_EQ(a.energy.pcie_joules, b.energy.pcie_joules);
    EXPECT_EQ(a.interrupts, b.interrupts);
    EXPECT_EQ(a.polls, b.polls);
    EXPECT_EQ(a.pcie_bytes, b.pcie_bytes);
    EXPECT_EQ(a.flow_retries, b.flow_retries);
    EXPECT_EQ(a.dropped_irqs, b.dropped_irqs);
    EXPECT_EQ(a.per_app_latency_ms, b.per_app_latency_ms);
    EXPECT_EQ(a.per_app_p99_latency_ms, b.per_app_p99_latency_ms);
    EXPECT_EQ(a.per_app_shed, b.per_app_shed);
    EXPECT_EQ(a.shed_requests, b.shed_requests);
    EXPECT_EQ(a.per_app_deadline_misses, b.per_app_deadline_misses);
    EXPECT_EQ(a.deadline_misses, b.deadline_misses);
    EXPECT_EQ(a.queue_overflows, b.queue_overflows);
    EXPECT_EQ(a.backpressure_stalls, b.backpressure_stalls);
    EXPECT_EQ(a.backpressure_stall_ticks, b.backpressure_stall_ticks);
    EXPECT_EQ(a.peak_active_flows, b.peak_active_flows);
    EXPECT_EQ(a.drx_cache_hits, b.drx_cache_hits);
    EXPECT_EQ(a.drx_cache_misses, b.drx_cache_misses);
    EXPECT_EQ(a.integrity_injected, b.integrity_injected);
    EXPECT_EQ(a.integrity_detected, b.integrity_detected);
    EXPECT_EQ(a.integrity_corrected, b.integrity_corrected);
    EXPECT_EQ(a.integrity_uncorrected, b.integrity_uncorrected);
    EXPECT_EQ(a.integrity_sdc_escapes, b.integrity_sdc_escapes);
    EXPECT_EQ(a.link_crc_replays, b.link_crc_replays);
    EXPECT_EQ(a.driver_round_trips, b.driver_round_trips);
    EXPECT_EQ(a.descriptor_fetches, b.descriptor_fetches);
}

void
expectTracesIdentical(const trace::TraceBuffer &a,
                      const trace::TraceBuffer &b, const std::string &ctx)
{
    SCOPED_TRACE(ctx);
    ASSERT_EQ(a.spans().size(), b.spans().size());
    for (std::size_t i = 0; i < a.spans().size(); ++i) {
        const trace::Span &sa = a.spans()[i];
        const trace::Span &sb = b.spans()[i];
        ASSERT_EQ(sa.begin, sb.begin) << "span " << i;
        ASSERT_EQ(sa.end, sb.end) << "span " << i;
        ASSERT_EQ(sa.cat, sb.cat) << "span " << i;
        ASSERT_EQ(sa.arg, sb.arg) << "span " << i;
        ASSERT_EQ(a.stringAt(sa.name), b.stringAt(sb.name)) << "span " << i;
        ASSERT_EQ(a.stringAt(sa.track), b.stringAt(sb.track))
            << "span " << i;
    }
    ASSERT_EQ(a.counters().size(), b.counters().size());
    for (std::size_t i = 0; i < a.counters().size(); ++i) {
        const trace::CounterSample &ca = a.counters()[i];
        const trace::CounterSample &cb = b.counters()[i];
        ASSERT_EQ(ca.at, cb.at) << "counter " << i;
        ASSERT_EQ(ca.value, cb.value) << "counter " << i;
        ASSERT_EQ(a.stringAt(ca.name), b.stringAt(cb.name))
            << "counter " << i;
    }
}

// ------------------------------------------------------------------
// 1. Event-queue ordering properties

TEST(EventQueueOrder, FifoTieBreakAtEqualTickAndPriority)
{
    for (const sim::CoreMode mode :
         {sim::CoreMode::Legacy, sim::CoreMode::Optimized}) {
        sim::EventQueue eq(mode);
        std::vector<int> fired;
        for (int i = 0; i < 64; ++i)
            eq.schedule(1000, [&fired, i] { fired.push_back(i); });
        eq.run();
        ASSERT_EQ(fired.size(), 64u);
        for (int i = 0; i < 64; ++i)
            EXPECT_EQ(fired[i], i) << "insertion order must be preserved";
    }
}

TEST(EventQueueOrder, PriorityBeatsSeqAndTickBeatsPriority)
{
    for (const sim::CoreMode mode :
         {sim::CoreMode::Legacy, sim::CoreMode::Optimized}) {
        sim::EventQueue eq(mode);
        std::vector<int> fired;
        eq.schedule(2000, [&] { fired.push_back(0); },
                    sim::Priority::Interrupt);
        eq.schedule(1000, [&] { fired.push_back(1); }, sim::Priority::Stat);
        eq.schedule(1000, [&] { fired.push_back(2); },
                    sim::Priority::Interrupt);
        eq.schedule(1000, [&] { fired.push_back(3); });
        eq.run();
        // Tick first (1000 before 2000), then priority
        // (Interrupt < Default < Stat), then insertion order.
        EXPECT_EQ(fired, (std::vector<int>{2, 3, 1, 0}));
    }
}

TEST(EventQueueOrder, FuzzVsSortedListReference)
{
    // Random schedule/cancel interleavings against a naive model: a
    // stable-sorted list of (when, prio, seq). No nested scheduling
    // here so the model stays exact.
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        struct RefEvent
        {
            Tick when;
            int prio;
            std::uint64_t seq;
            int id;
        };
        std::vector<RefEvent> ref;
        std::vector<int> expected;

        sim::EventQueue legacy(sim::CoreMode::Legacy);
        sim::EventQueue opt(sim::CoreMode::Optimized);
        std::vector<int> fired_legacy, fired_opt;
        std::vector<sim::EventHandle> hl, ho;

        Rng rng(seed * 7717 + 5);
        const int n = 40 + static_cast<int>(rng.below(80));
        std::uint64_t seq = 0;
        for (int i = 0; i < n; ++i) {
            if (!hl.empty() && rng.below(5) == 0) {
                // Cancel a random outstanding event in all three.
                const std::size_t pick = rng.below(hl.size());
                hl[pick].cancel();
                ho[pick].cancel();
                const int id = static_cast<int>(pick);
                ref.erase(std::remove_if(ref.begin(), ref.end(),
                                         [id](const RefEvent &e) {
                                             return e.id == id;
                                         }),
                          ref.end());
                continue;
            }
            const Tick when = 100 + rng.below(50) * 10;
            static constexpr sim::Priority prios[3] = {
                sim::Priority::Interrupt, sim::Priority::Default,
                sim::Priority::Stat};
            const sim::Priority prio = prios[rng.below(3)];
            const int id = static_cast<int>(hl.size());
            hl.push_back(legacy.schedule(
                when, [&fired_legacy, id] { fired_legacy.push_back(id); },
                prio));
            ho.push_back(opt.schedule(
                when, [&fired_opt, id] { fired_opt.push_back(id); },
                prio));
            ref.push_back({when, static_cast<int>(prio), seq++, id});
            ASSERT_EQ(legacy.pendingCount(), opt.pendingCount());
            ASSERT_EQ(opt.pendingCount(), ref.size());
        }

        std::stable_sort(ref.begin(), ref.end(),
                         [](const RefEvent &a, const RefEvent &b) {
                             if (a.when != b.when)
                                 return a.when < b.when;
                             if (a.prio != b.prio)
                                 return a.prio < b.prio;
                             return a.seq < b.seq;
                         });
        for (const RefEvent &e : ref)
            expected.push_back(e.id);

        legacy.run();
        opt.run();
        EXPECT_EQ(fired_legacy, expected) << "seed " << seed;
        EXPECT_EQ(fired_opt, expected) << "seed " << seed;
        EXPECT_EQ(legacy.executedCount(), opt.executedCount());
    }
}

TEST(EventQueueOrder, NestedSchedulingDifferential)
{
    // Events that schedule children while firing: the two engines must
    // interleave parents and children identically. Child delays are a
    // pure function of the parent id, so both arms build the same tree.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        auto run = [seed](sim::CoreMode mode) {
            sim::EventQueue eq(mode);
            std::vector<std::pair<Tick, int>> log;
            std::function<void(int, int)> fire = [&](int id, int depth) {
                log.emplace_back(eq.now(), id);
                if (depth >= 3)
                    return;
                const int kids = (id + depth) % 3;
                for (int c = 0; c < kids; ++c) {
                    const int cid = id * 7 + c + 1;
                    eq.scheduleIn(
                        10 + static_cast<Tick>((id + c) % 5) * 10,
                        [&fire, cid, depth] { fire(cid, depth + 1); },
                        c % 2 ? sim::Priority::Stat
                              : sim::Priority::Default);
                }
            };
            Rng rng(seed * 31 + 7);
            for (int i = 0; i < 12; ++i) {
                const int id = static_cast<int>(i + rng.below(100));
                eq.schedule(50 + rng.below(20) * 10,
                            [&fire, id] { fire(id, 0); });
            }
            eq.run();
            return log;
        };
        EXPECT_EQ(run(sim::CoreMode::Legacy), run(sim::CoreMode::Optimized))
            << "seed " << seed;
    }
}

TEST(EventQueueHandles, StaleHandleCannotCancelRecycledSlot)
{
    sim::EventQueue eq(sim::CoreMode::Optimized);
    int fired = 0;
    sim::EventHandle h1 = eq.schedule(100, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(h1.pending());
    // The next event recycles h1's slot (free list); the stale handle
    // must observe a sequence mismatch and do nothing.
    sim::EventHandle h2 = eq.scheduleIn(100, [&] { ++fired; });
    h1.cancel();
    EXPECT_TRUE(h2.pending());
    EXPECT_EQ(eq.pendingCount(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueHandles, ResetInvalidatesOldEpochHandles)
{
    sim::EventQueue eq(sim::CoreMode::Optimized);
    int fired = 0;
    sim::EventHandle h = eq.schedule(100, [&] { ++fired; });
    eq.reset();
    EXPECT_EQ(eq.pendingCount(), 0u);
    sim::EventHandle h2 = eq.schedule(100, [&] { ++fired; });
    h.cancel(); // stale epoch: must not touch the new event
    EXPECT_TRUE(h2.pending());
    eq.run();
    EXPECT_EQ(fired, 1);
}

// ------------------------------------------------------------------
// 2. Randomized legacy-vs-optimized system differential

TEST(CoreEquiv, TwoHundredRandomScenariosBitIdentical)
{
    CoreModeGuard guard;
    constexpr std::uint64_t scenarios = 200;
    for (std::uint64_t seed = 0; seed < scenarios; ++seed) {
        Rng rng(seed * 6271 + 17);
        sys::SystemConfig cfg = testutil::randomSystemConfig(rng);
        std::vector<sys::AppModel> apps;
        const unsigned n_models = 1 + static_cast<unsigned>(rng.below(2));
        for (unsigned m = 0; m < n_models; ++m)
            apps.push_back(testutil::randomChainApp(seed * 10 + m));
        if (rng.below(3) == 0)
            cfg.chain = sys::ChainSubmission::Descriptor;

        // A quarter of the scenarios run under a fault plan, a quarter
        // under an integrity plan. Plans are stateful: each arm gets a
        // fresh instance of the identical spec.
        fault::FaultSpec fspec;
        fspec.seed = seed + 1;
        fspec.flow_corrupt_prob = 0.1;
        fspec.flow_stall_prob = 0.05;
        fspec.irq_drop_prob = 0.1;
        integrity::IntegritySpec ispec;
        ispec.seed = seed + 1;
        ispec.link_crc_prob = 0.15;
        const bool with_fault = seed % 4 == 1;
        const bool with_integrity = seed % 4 == 3;

        auto run_arm = [&](sim::CoreMode mode, trace::TraceBuffer &tb) {
            sim::setCoreMode(mode);
            fault::FaultPlan fplan(fspec);
            integrity::IntegrityPlan iplan(ispec);
            sys::SystemConfig arm_cfg = cfg;
            if (with_fault)
                arm_cfg.fault_plan = &fplan;
            if (with_integrity)
                arm_cfg.integrity_plan = &iplan;
            trace::TraceSession session(tb);
            return sys::simulateSystem(arm_cfg, apps);
        };

        trace::TraceBuffer tb_legacy, tb_opt;
        const sys::RunStats legacy = run_arm(sim::CoreMode::Legacy,
                                             tb_legacy);
        const sys::RunStats opt = run_arm(sim::CoreMode::Optimized,
                                          tb_opt);
        const std::string ctx = "seed " + std::to_string(seed) +
                                " placement " + toString(cfg.placement);
        expectStatsIdentical(legacy, opt, ctx);
        expectTracesIdentical(tb_legacy, tb_opt, ctx);
        if (HasFatalFailure() || HasNonfatalFailure())
            break; // one seed's dump is enough
    }
}

// ------------------------------------------------------------------
// 3. SIMD-vs-scalar DRX interpreter sweep

namespace
{

restructure::Bytes
randomInputFor(const restructure::BufferDesc &desc, Rng &rng)
{
    restructure::Bytes in(desc.bytes());
    if (desc.dtype == DType::F32) {
        std::vector<float> vals(desc.elems());
        for (float &v : vals)
            v = static_cast<float>(rng.uniform(-4.0, 4.0));
        std::memcpy(in.data(), vals.data(), in.size());
    } else {
        for (auto &b : in)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return in;
}

std::vector<restructure::Kernel>
catalogAtRandomShapes(Rng &rng)
{
    using namespace restructure;
    std::vector<Kernel> ks;
    ks.push_back(melSpectrogram(8 + rng.below(8), 64 + rng.below(64),
                                16 + rng.below(16)));
    ks.push_back(videoFrameRestructure(24 + rng.below(40),
                                       24 + rng.below(40),
                                       16 + rng.below(32)));
    {
        const std::size_t bins = 32 + rng.below(32);
        ks.push_back(brainSignalRestructure(8 + rng.below(8), bins,
                                            4 + rng.below(bins / 8)));
    }
    {
        const std::size_t record = 32 + rng.below(32);
        ks.push_back(textRecordRestructure(record * (8 + rng.below(8)),
                                           record,
                                           record + rng.below(16)));
    }
    ks.push_back(nerTokenRestructure(256 + rng.below(256),
                                     8 + rng.below(8),
                                     16 + rng.below(16)));
    ks.push_back(dbColumnarize(64 + rng.below(192), rng.below(2) != 0,
                               rng.below(1000)));
    ks.push_back(vectorReduction(2 + rng.below(6), 64 + rng.below(192)));
    return ks;
}

} // namespace

TEST(SimdEquiv, CatalogKernelsByteIdenticalAndCycleIdentical)
{
    CoreModeGuard guard;
    drx::DrxConfig cfg;
    cfg.dram_bytes = 64 * mib; // plenty for these shapes, fast to build
    drx::DrxMachine scalar_machine(cfg), simd_machine(cfg);

    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        Rng shapes_rng(seed * 131 + 3);
        const auto kernels = catalogAtRandomShapes(shapes_rng);
        for (std::size_t k = 0; k < kernels.size(); ++k) {
            Rng in_rng(seed * 997 + k);
            const restructure::Bytes input =
                randomInputFor(kernels[k].input, in_rng);

            drx::setSimdEnabled(false);
            scalar_machine.resetAlloc();
            restructure::Bytes out_scalar;
            const drx::RunResult r_scalar = drx::runKernelOnDrx(
                kernels[k], input, scalar_machine, &out_scalar);

            drx::setSimdEnabled(true);
            simd_machine.resetAlloc();
            restructure::Bytes out_simd;
            const drx::RunResult r_simd = drx::runKernelOnDrx(
                kernels[k], input, simd_machine, &out_simd);

            SCOPED_TRACE("seed " + std::to_string(seed) + " kernel " +
                         kernels[k].name);
            EXPECT_EQ(out_scalar, out_simd) << "output bytes diverged";
            EXPECT_EQ(r_scalar.total_cycles, r_simd.total_cycles);
            EXPECT_EQ(r_scalar.compute_cycles, r_simd.compute_cycles);
            EXPECT_EQ(r_scalar.mem_cycles, r_simd.mem_cycles);
            EXPECT_EQ(r_scalar.bytes_read, r_simd.bytes_read);
            EXPECT_EQ(r_scalar.bytes_written, r_simd.bytes_written);
            EXPECT_EQ(r_scalar.dyn_instructions, r_simd.dyn_instructions);
        }
    }
}

// ------------------------------------------------------------------
// 4. Settle-visit linearity regression

namespace
{

/** Run n independent flows with staggered completions; return visits. */
std::uint64_t
settleVisitsFor(sim::CoreMode mode, unsigned n)
{
    sim::setCoreMode(mode);
    sim::EventQueue eq;
    pcie::Fabric fab(eq, "settle");
    unsigned done = 0;
    std::vector<std::pair<pcie::NodeId, pcie::NodeId>> pairs;
    for (unsigned i = 0; i < n; ++i) {
        const pcie::NodeId a = fab.addNode(pcie::NodeKind::EndPoint,
                                           "a" + std::to_string(i));
        const pcie::NodeId b = fab.addNode(pcie::NodeKind::EndPoint,
                                           "b" + std::to_string(i));
        fab.connectCustom(a, b, 1e9);
        pairs.emplace_back(a, b);
    }
    for (unsigned i = 0; i < n; ++i) {
        // Distinct sizes: each flow completes at its own tick, so the
        // legacy engine re-scans every remaining flow per completion.
        fab.startFlow(pairs[i].first, pairs[i].second,
                      (i + 1) * 100 * kib, [&done] { ++done; });
    }
    eq.run();
    EXPECT_EQ(done, n);
    return fab.settleVisits();
}

} // namespace

TEST(SettleScaling, OptimizedReapingIsLinearLegacyIsQuadratic)
{
    CoreModeGuard guard;
    const std::uint64_t opt_small =
        settleVisitsFor(sim::CoreMode::Optimized, 10);
    const std::uint64_t opt_large =
        settleVisitsFor(sim::CoreMode::Optimized, 40);
    const std::uint64_t leg_small =
        settleVisitsFor(sim::CoreMode::Legacy, 10);
    const std::uint64_t leg_large =
        settleVisitsFor(sim::CoreMode::Legacy, 40);

    // 4x the flows: a linear reaper does ~4x the visits (slack to 6x),
    // the legacy rescanner ~16x (must exceed 10x). Also pin the
    // absolute optimized cost: no more than a few visits per flow.
    EXPECT_LE(opt_large, opt_small * 6)
        << "optimized settle reaping is no longer linear";
    EXPECT_GE(leg_large, leg_small * 10)
        << "legacy counter no longer models the quadratic re-scan";
    EXPECT_LE(opt_large, 40u * 4)
        << "optimized reaping visits too many flow records";
    EXPECT_GT(leg_large, opt_large)
        << "legacy should visit strictly more records";
}

// ------------------------------------------------------------------
// 5. Sharded system execution

namespace
{

/** A BitW model with @p k kernels so port packing is predictable. */
sys::AppModel
packedApp(unsigned k, std::uint64_t seed)
{
    sys::AppModel app = testutil::randomChainApp(seed);
    while (app.kernels.size() > k) {
        app.kernels.pop_back();
        app.motions.pop_back();
    }
    while (app.kernels.size() < k) {
        app.kernels.push_back(app.kernels.back());
        app.motions.push_back(app.motions.back());
    }
    // Rebuild the k-1 motion list length invariant.
    app.motions.resize(k - 1, app.motions.front());
    return app;
}

} // namespace

TEST(ShardedSys, SingleDomainBitIdenticalToMonolithic)
{
    CoreModeGuard guard;
    // 2 apps x 3 kernels = 6 ports: exactly one switch, one domain;
    // the sharded engine must reproduce the monolithic run bit for bit
    // (same code path per the contract), traces included.
    for (const sys::Placement placement :
         {sys::Placement::BumpInTheWire, sys::Placement::PcieIntegrated}) {
        sys::SystemConfig cfg;
        cfg.placement = placement;
        cfg.n_apps = placement == sys::Placement::BumpInTheWire ? 1 : 2;
        cfg.requests_per_app = 2;
        const std::vector<sys::AppModel> apps = {packedApp(3, 11)};

        trace::TraceBuffer tb_mono, tb_shard;
        sys::RunStats mono, shard;
        {
            trace::TraceSession session(tb_mono);
            mono = sys::simulateSystem(cfg, apps);
        }
        {
            trace::TraceSession session(tb_shard);
            shard = sys::simulateSystemSharded(cfg, apps, 1);
        }
        const std::string ctx = "placement " + toString(placement);
        expectStatsIdentical(mono, shard, ctx);
        expectTracesIdentical(tb_mono, tb_shard, ctx);
    }
}

TEST(ShardedSys, JobsInvariance)
{
    CoreModeGuard guard;
    // 4 apps x 3 kernels under BitW: apps {0,1} pack switch 0, apps
    // {2,3} pack switch 1 -> two independent domains. 1 worker vs 8
    // workers must commit byte-identical stats and traces.
    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::BumpInTheWire;
    cfg.n_apps = 4;
    cfg.requests_per_app = 2;
    const std::vector<sys::AppModel> apps = {packedApp(3, 21),
                                             packedApp(3, 22)};

    trace::TraceBuffer tb_1, tb_8;
    sys::RunStats s1, s8;
    {
        trace::TraceSession session(tb_1);
        s1 = sys::simulateSystemSharded(cfg, apps, 1);
    }
    {
        trace::TraceSession session(tb_8);
        s8 = sys::simulateSystemSharded(cfg, apps, 8);
    }
    expectStatsIdentical(s1, s8, "jobs 1 vs 8");
    expectTracesIdentical(tb_1, tb_8, "jobs 1 vs 8");
}

TEST(ShardedSys, JobsInvarianceRandomSweep)
{
    CoreModeGuard guard;
    static constexpr sys::Placement shardable[] = {
        sys::Placement::StandaloneDrx,
        sys::Placement::BumpInTheWire,
        sys::Placement::PcieIntegrated,
    };
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
        Rng rng(seed * 5821 + 9);
        sys::SystemConfig cfg;
        cfg.placement = shardable[rng.below(3)];
        cfg.n_apps = 2 + static_cast<unsigned>(rng.below(5));
        cfg.requests_per_app = 1 + static_cast<unsigned>(rng.below(2));
        const std::vector<sys::AppModel> apps = {
            testutil::randomChainApp(seed * 3 + 100)};
        const sys::RunStats s1 = sys::simulateSystemSharded(cfg, apps, 1);
        const sys::RunStats s8 = sys::simulateSystemSharded(cfg, apps, 8);
        expectStatsIdentical(s1, s8, "sweep seed " + std::to_string(seed));
    }
}

TEST(ShardedSys, MultiDomainStructuralInvariants)
{
    CoreModeGuard guard;
    // Monolithic vs multi-domain sharded: per-domain IRQ controllers
    // change notification latencies (and with them float aggregates),
    // but the structural integer totals are invariant.
    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::BumpInTheWire;
    cfg.n_apps = 4;
    cfg.requests_per_app = 3;
    const std::vector<sys::AppModel> apps = {packedApp(3, 31),
                                             packedApp(3, 32)};
    const sys::RunStats mono = sys::simulateSystem(cfg, apps);
    const sys::RunStats shard = sys::simulateSystemSharded(cfg, apps, 8);

    EXPECT_EQ(mono.pcie_bytes, shard.pcie_bytes);
    EXPECT_EQ(mono.kernel_ticks, shard.kernel_ticks);
    EXPECT_EQ(mono.interrupts + mono.polls,
              shard.interrupts + shard.polls);
    EXPECT_EQ(mono.driver_round_trips, shard.driver_round_trips);
    EXPECT_EQ(mono.descriptor_fetches, shard.descriptor_fetches);
    EXPECT_EQ(mono.flow_retries, shard.flow_retries);
    EXPECT_EQ(mono.shed_requests, shard.shed_requests);
    EXPECT_EQ(mono.queue_overflows, shard.queue_overflows);
    EXPECT_EQ(mono.per_app_latency_ms.size(),
              shard.per_app_latency_ms.size());
    EXPECT_GT(shard.makespan_ticks, 0u);
}

TEST(ShardedSys, StandaloneCardsGroupDomainsAcrossSwitches)
{
    CoreModeGuard guard;
    // StandaloneDrx: each card serves a *pair* of apps, and the pair
    // can straddle a switch boundary - the partitioner must keep the
    // pair in one domain. 4 apps x 2 kernels -> cards at apps 0 and 2.
    sys::SystemConfig cfg;
    cfg.placement = sys::Placement::StandaloneDrx;
    cfg.n_apps = 4;
    cfg.requests_per_app = 2;
    const std::vector<sys::AppModel> apps = {packedApp(2, 41)};
    const sys::RunStats s1 = sys::simulateSystemSharded(cfg, apps, 1);
    const sys::RunStats s8 = sys::simulateSystemSharded(cfg, apps, 8);
    expectStatsIdentical(s1, s8, "standalone grouping");
    const sys::RunStats mono = sys::simulateSystem(cfg, apps);
    EXPECT_EQ(mono.pcie_bytes, s8.pcie_bytes);
    EXPECT_EQ(mono.kernel_ticks, s8.kernel_ticks);
}

TEST(ShardedSys, GateFallsBackToMonolithic)
{
    CoreModeGuard guard;
    // Non-decomposable placements must take the monolithic path and
    // match simulateSystem bit for bit.
    for (const sys::Placement placement :
         {sys::Placement::AllCpu, sys::Placement::MultiAxl,
          sys::Placement::IntegratedDrx}) {
        sys::SystemConfig cfg;
        cfg.placement = placement;
        cfg.n_apps = 2;
        cfg.requests_per_app = 2;
        const std::vector<sys::AppModel> apps = {packedApp(2, 51)};
        const sys::RunStats mono = sys::simulateSystem(cfg, apps);
        const sys::RunStats shard =
            sys::simulateSystemSharded(cfg, apps, 8);
        expectStatsIdentical(mono, shard,
                             "fallback " + toString(placement));
    }
}

} // namespace
