/**
 * @file
 * Tests for the DRX compiled-kernel cache and timing-memoization layer
 * (src/drx/cache.*): cached-vs-uncached byte and tick identity over the
 * whole catalog, the shape-determinism classifier, LRU eviction,
 * counter exactness, fault-plan replay identity, retry plan reuse in
 * the runtime, and jobs-count invariance under the parallel scenario
 * engine.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "common/random.hh"
#include "drx/cache.hh"
#include "drx/compiler.hh"
#include "drx/machine.hh"
#include "exec/scenario.hh"
#include "fault/fault.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"
#include "runtime/runtime.hh"

using namespace dmx;
using namespace dmx::drx;
using restructure::Bytes;
using restructure::Kernel;

namespace
{

Bytes
randomInput(const restructure::BufferDesc &desc, std::uint64_t seed)
{
    Rng rng(seed);
    Bytes out(desc.bytes());
    if (desc.dtype == DType::F32) {
        for (std::size_t i = 0; i < desc.elems(); ++i) {
            const float v = static_cast<float>(rng.uniform(-1, 1));
            std::memcpy(&out[i * 4], &v, 4);
        }
    } else {
        for (auto &b : out)
            b = static_cast<std::uint8_t>(rng.below(256));
    }
    return out;
}

/** Every catalog builder, at small-but-nontrivial sizes. */
std::vector<Kernel>
fullCatalog()
{
    std::vector<Kernel> ks;
    ks.push_back(restructure::melSpectrogram(16, 65, 24));
    ks.push_back(restructure::videoFrameRestructure(48, 64, 32));
    ks.push_back(restructure::brainSignalRestructure(16, 65, 8));
    ks.push_back(restructure::textRecordRestructure(4096, 64, 80));
    ks.push_back(restructure::nerTokenRestructure(2048, 32, 16));
    ks.push_back(restructure::dbColumnarize(256, false));
    ks.push_back(restructure::dbColumnarize(256, true));
    ks.push_back(restructure::vectorReduction(4, 512));
    return ks;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.compute_cycles, b.compute_cycles);
    EXPECT_EQ(a.mem_cycles, b.mem_cycles);
    EXPECT_EQ(a.bytes_read, b.bytes_read);
    EXPECT_EQ(a.bytes_written, b.bytes_written);
    EXPECT_EQ(a.dyn_instructions, b.dyn_instructions);
    EXPECT_EQ(a.faulted, b.faulted);
}

} // namespace

// --------------------------------------------------- on/off identity

TEST(DrxCache, CachedMatchesUncachedOverFullCatalog)
{
    for (const Kernel &kernel : fullCatalog()) {
        SCOPED_TRACE(kernel.name);
        const Bytes input = randomInput(kernel.input, 11);

        DrxMachine plain;
        Bytes plain_out;
        const RunResult ref =
            runKernelOnDrx(kernel, input, plain, &plain_out);

        ProgramCache cache;
        DrxMachine machine;
        Bytes out;
        // Cold, warm-with-output, warm-timing-only: all must agree
        // with the uncached reference bit for bit and tick for tick.
        const RunResult cold =
            runKernelOnDrxCached(kernel, input, machine, &out, 0, &cache);
        expectSameResult(cold, ref);
        EXPECT_EQ(out, plain_out);

        machine.resetAlloc();
        out.clear();
        const RunResult warm =
            runKernelOnDrxCached(kernel, input, machine, &out, 0, &cache);
        expectSameResult(warm, ref);
        EXPECT_EQ(out, plain_out);

        machine.resetAlloc();
        const RunResult timing =
            runKernelOnDrxCached(kernel, input, machine, nullptr, 0,
                                 &cache);
        expectSameResult(timing, ref);
    }
}

TEST(DrxCache, DisabledCacheIsPlainPath)
{
    const Kernel kernel = restructure::videoFrameRestructure(48, 64, 32);
    const Bytes input = randomInput(kernel.input, 3);

    DrxMachine plain;
    Bytes plain_out;
    const RunResult ref = runKernelOnDrx(kernel, input, plain, &plain_out);

    ProgramCache cache({.enabled = false});
    DrxMachine machine;
    Bytes out;
    for (int i = 0; i < 3; ++i) {
        machine.resetAlloc();
        const RunResult r =
            runKernelOnDrxCached(kernel, input, machine, &out, 0, &cache);
        expectSameResult(r, ref);
        EXPECT_EQ(out, plain_out);
    }
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.counters().compile_hits, 0u);
    EXPECT_EQ(cache.counters().compile_misses, 0u);
}

TEST(DrxCache, RebasedInstallMatchesBaseZero)
{
    const Kernel kernel = restructure::melSpectrogram(16, 65, 24);
    const Bytes input = randomInput(kernel.input, 5);

    DrxMachine plain;
    Bytes plain_out;
    const RunResult ref = runKernelOnDrx(kernel, input, plain, &plain_out);

    // A machine whose allocator is not at zero forces installPlan() to
    // rebase the shared plan; outputs and timing must not move.
    ProgramCache cache;
    DrxMachine machine;
    machine.alloc(4096 + 17);
    Bytes out;
    const RunResult r =
        runKernelOnDrxCached(kernel, input, machine, &out, 0, &cache);
    expectSameResult(r, ref);
    EXPECT_EQ(out, plain_out);
}

// ----------------------------------------------------- tier-2 replay

TEST(DrxCache, TimingReplayIsTickIdentical)
{
    const Kernel kernel = restructure::videoFrameRestructure(48, 64, 32);
    const Bytes input = randomInput(kernel.input, 7);
    ASSERT_TRUE(planKernel(kernel, DrxConfig{}).shape_deterministic);

    ProgramCache cache;
    DrxMachine machine;
    const RunResult first =
        runKernelOnDrxCached(kernel, input, machine, nullptr, 0, &cache);
    EXPECT_EQ(cache.counters().timing_hits, 0u);

    for (int i = 0; i < 4; ++i) {
        machine.resetAlloc();
        const RunResult replay =
            runKernelOnDrxCached(kernel, input, machine, nullptr, 0,
                                 &cache);
        expectSameResult(replay, first);
    }
    // Run 1 recorded the memo; runs 2..5 replayed it.
    EXPECT_EQ(cache.counters().timing_hits, 4u);
}

TEST(DrxCache, OutputRequestBypassesReplay)
{
    const Kernel kernel = restructure::textRecordRestructure(4096, 64, 80);
    const Bytes input = randomInput(kernel.input, 9);
    ASSERT_TRUE(planKernel(kernel, DrxConfig{}).shape_deterministic);

    ProgramCache cache;
    DrxMachine machine;
    runKernelOnDrxCached(kernel, input, machine, nullptr, 0, &cache);

    // With an output requested the machine must execute for real even
    // though a memo exists: the bytes are the machine's own.
    DrxMachine plain;
    Bytes plain_out;
    runKernelOnDrx(kernel, input, plain, &plain_out);

    machine.resetAlloc();
    Bytes out;
    runKernelOnDrxCached(kernel, input, machine, &out, 0, &cache);
    // Replay cannot synthesize bytes: matching output proves the
    // machine executed for real despite the memo being available.
    EXPECT_EQ(out, plain_out);
}

TEST(DrxCache, NonShapeDeterministicKernelsNeverMemoize)
{
    const Kernel kernel = restructure::dbColumnarize(256, true);
    const Bytes input = randomInput(kernel.input, 13);
    ASSERT_FALSE(planKernel(kernel, DrxConfig{}).shape_deterministic);

    ProgramCache cache;
    DrxMachine machine;
    for (int i = 0; i < 3; ++i) {
        machine.resetAlloc();
        runKernelOnDrxCached(kernel, input, machine, nullptr, 0, &cache);
    }
    EXPECT_EQ(cache.counters().timing_hits, 0u);
    EXPECT_EQ(cache.counters().timing_misses, 2u); // runs 2 and 3
}

// ------------------------------------------------------- classifier

TEST(DrxCache, ClassifierAcceptsGatherFreeKernels)
{
    const DrxConfig cfg;
    EXPECT_TRUE(planKernel(restructure::videoFrameRestructure(48, 64, 32),
                           cfg)
                    .shape_deterministic);
    EXPECT_TRUE(
        planKernel(restructure::textRecordRestructure(4096, 64, 80), cfg)
            .shape_deterministic);
    EXPECT_TRUE(planKernel(restructure::vectorReduction(4, 512), cfg)
                    .shape_deterministic);
}

TEST(DrxCache, ClassifierRejectsGatherKernels)
{
    // Banded matvec, band averaging and columnarize all lower to the
    // Gather opcode, whose addresses are register values the static
    // classifier conservatively treats as data-dependent.
    const DrxConfig cfg;
    EXPECT_FALSE(planKernel(restructure::melSpectrogram(16, 65, 24), cfg)
                     .shape_deterministic);
    EXPECT_FALSE(
        planKernel(restructure::brainSignalRestructure(16, 65, 8), cfg)
            .shape_deterministic);
    EXPECT_FALSE(planKernel(restructure::dbColumnarize(256, true), cfg)
                     .shape_deterministic);
}

TEST(DrxCache, ClassifierIsPerProgram)
{
    // A plan is shape-deterministic iff every stage program is.
    const CompiledKernel mel =
        planKernel(restructure::melSpectrogram(16, 65, 24), DrxConfig{});
    bool any_gather_stage = false;
    for (const Program &p : mel.programs)
        any_gather_stage |= !shapeDeterministic(p);
    EXPECT_TRUE(any_gather_stage);

    const CompiledKernel video = planKernel(
        restructure::videoFrameRestructure(48, 64, 32), DrxConfig{});
    for (const Program &p : video.programs)
        EXPECT_TRUE(shapeDeterministic(p));
}

// --------------------------------------------------- hashing & equality

TEST(DrxCache, StructuralHashIgnoresNameDiscriminatesStructure)
{
    const DrxConfig cfg;
    Kernel a = restructure::melSpectrogram(16, 65, 24);
    Kernel b = a;
    b.name = "renamed";
    EXPECT_EQ(kernelStructuralHash(a, cfg), kernelStructuralHash(b, cfg));
    EXPECT_TRUE(kernelStructurallyEqual(a, b));

    const Kernel c = restructure::melSpectrogram(16, 65, 32);
    EXPECT_NE(kernelStructuralHash(a, cfg), kernelStructuralHash(c, cfg));
    EXPECT_FALSE(kernelStructurallyEqual(a, c));

    DrxConfig other;
    other.freq_hz *= 2;
    EXPECT_NE(kernelStructuralHash(a, cfg), kernelStructuralHash(a, other));
    EXPECT_FALSE(drxConfigEqual(cfg, other));
    EXPECT_TRUE(drxConfigEqual(cfg, DrxConfig{}));
}

TEST(DrxCache, HashSeesWeightContents)
{
    // Two kernels identical except for one weight value must land on
    // different keys (same shapes, different constants).
    const DrxConfig cfg;
    Kernel a = restructure::melSpectrogram(16, 65, 24);
    Kernel b = a;
    for (auto &stage : b.stages) {
        if (stage.weights && !stage.weights->empty()) {
            auto w = std::make_shared<std::vector<float>>(*stage.weights);
            (*w)[0] += 1.0f;
            stage.weights = std::move(w);
            break;
        }
    }
    EXPECT_NE(kernelStructuralHash(a, cfg), kernelStructuralHash(b, cfg));
    EXPECT_FALSE(kernelStructurallyEqual(a, b));
}

// ------------------------------------------------------ LRU eviction

TEST(DrxCache, LruEvictsLeastRecentlyUsed)
{
    DrxCacheConfig cfg;
    cfg.capacity = 2;
    ProgramCache cache(cfg);
    const DrxConfig hw;

    const Kernel a = restructure::videoFrameRestructure(48, 64, 32);
    const Kernel b = restructure::textRecordRestructure(4096, 64, 80);
    const Kernel c = restructure::vectorReduction(4, 512);

    EXPECT_FALSE(cache.lookup(a, hw).hit);
    EXPECT_FALSE(cache.lookup(b, hw).hit);
    EXPECT_TRUE(cache.lookup(a, hw).hit); // refresh a; b is now LRU
    EXPECT_FALSE(cache.lookup(c, hw).hit); // evicts b
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.counters().evictions, 1u);

    EXPECT_TRUE(cache.lookup(a, hw).hit);
    EXPECT_FALSE(cache.lookup(b, hw).hit); // b was evicted: miss again
    EXPECT_EQ(cache.counters().evictions, 2u); // ... which evicted c
}

TEST(DrxCache, ClearDropsEntriesKeepsCounters)
{
    ProgramCache cache;
    const DrxConfig hw;
    cache.lookup(restructure::vectorReduction(4, 512), hw);
    cache.lookup(restructure::vectorReduction(4, 512), hw);
    EXPECT_EQ(cache.size(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.counters().compile_hits, 1u);
    EXPECT_EQ(cache.counters().compile_misses, 1u);
}

// -------------------------------------------------- counter exactness

TEST(DrxCache, CountersAreExact)
{
    const Kernel video = restructure::videoFrameRestructure(48, 64, 32);
    const Kernel mel = restructure::melSpectrogram(16, 65, 24);
    const Bytes video_in = randomInput(video.input, 1);
    const Bytes mel_in = randomInput(mel.input, 2);

    ProgramCache cache;
    DrxMachine machine;
    // video: miss, then 2 timing-only runs (record memo, replay it).
    runKernelOnDrxCached(video, video_in, machine, nullptr, 0, &cache);
    machine.resetAlloc();
    runKernelOnDrxCached(video, video_in, machine, nullptr, 0, &cache);
    machine.resetAlloc();
    runKernelOnDrxCached(video, video_in, machine, nullptr, 0, &cache);
    // mel: miss, then one more run (no memo possible).
    machine.resetAlloc();
    runKernelOnDrxCached(mel, mel_in, machine, nullptr, 0, &cache);
    machine.resetAlloc();
    runKernelOnDrxCached(mel, mel_in, machine, nullptr, 0, &cache);

    const CacheCounters &c = cache.counters();
    EXPECT_EQ(c.compile_misses, 2u); // one per distinct kernel
    EXPECT_EQ(c.compile_hits, 3u);   // video x2 + mel x1 warm lookups
    // The cold video run records the memo, so both warm video lookups
    // find it; mel (non-shape-deterministic) never records one.
    EXPECT_EQ(c.timing_hits, 2u);
    EXPECT_EQ(c.timing_misses, 1u); // mel run 2
    EXPECT_EQ(c.evictions, 0u);
    EXPECT_DOUBLE_EQ(c.hitRate(), 3.0 / 5.0);

    std::ostringstream json;
    cache.statGroup().dumpAllJson(json);
    EXPECT_NE(json.str().find("\"group\":\"drx.cache\""),
              std::string::npos)
        << json.str();
    EXPECT_NE(json.str().find("\"hits\":3"), std::string::npos);
    EXPECT_NE(json.str().find("\"misses\":2"), std::string::npos);
    EXPECT_NE(json.str().find("\"timing_hits\":2"), std::string::npos);
}

TEST(DrxCache, GlobalCountersAggregate)
{
    ProgramCache::resetGlobalCounters();
    const Kernel k = restructure::vectorReduction(4, 512);
    const Bytes in = randomInput(k.input, 4);
    ProgramCache cache;
    DrxMachine machine;
    runKernelOnDrxCached(k, in, machine, nullptr, 0, &cache);
    machine.resetAlloc();
    runKernelOnDrxCached(k, in, machine, nullptr, 0, &cache);

    const CacheCounters g = ProgramCache::globalCounters();
    EXPECT_EQ(g.compile_misses, 1u);
    EXPECT_EQ(g.compile_hits, 1u);
    ProgramCache::resetGlobalCounters();
    EXPECT_EQ(ProgramCache::globalCounters().compile_hits, 0u);
}

// --------------------------------------------- fault-plan identity

TEST(DrxCache, RandomizedFaultPlanIdenticalOnAndOff)
{
    // Both arms consume the fault Rng stream identically: replay asks
    // the machine hook exactly once per stage program, like a real run.
    const Kernel kernel = restructure::videoFrameRestructure(48, 64, 32);
    const Bytes input = randomInput(kernel.input, 21);
    fault::FaultSpec spec;
    spec.seed = 99;
    spec.drx_fault_prob = 0.4;

    fault::FaultPlan plan_ref(spec);
    DrxMachine plain;
    plain.setFaultHook([&plan_ref] { return plan_ref.onMachine(); });

    fault::FaultPlan plan_cached(spec);
    ProgramCache cache;
    DrxMachine machine;
    machine.setFaultHook([&plan_cached] { return plan_cached.onMachine(); });

    bool saw_fault = false, saw_clean = false;
    for (int i = 0; i < 16; ++i) {
        plain.resetAlloc();
        const RunResult ref = runKernelOnDrx(kernel, input, plain);
        machine.resetAlloc();
        const RunResult got =
            runKernelOnDrxCached(kernel, input, machine, nullptr, 0,
                                 &cache);
        SCOPED_TRACE(i);
        expectSameResult(got, ref);
        (ref.faulted ? saw_fault : saw_clean) = true;
    }
    EXPECT_TRUE(saw_fault);
    EXPECT_TRUE(saw_clean);
    EXPECT_EQ(plan_ref.stats().machine_faults,
              plan_cached.stats().machine_faults);
    // The memo was recorded and replay really engaged on this arm.
    EXPECT_GT(cache.counters().timing_hits, 0u);
}

// ------------------------------------------------- runtime integration

TEST(DrxCacheRuntime, FaultRetryIdenticalWithCacheOnAndOff)
{
    const Kernel kernel = restructure::melSpectrogram(8, 64, 16);
    std::vector<float> vals(kernel.input.elems());
    for (std::size_t i = 0; i < vals.size(); ++i)
        vals[i] = std::sin(static_cast<float>(i) * 0.13f);
    Bytes input(kernel.input.bytes());
    std::memcpy(input.data(), vals.data(), input.size());

    const auto run = [&](bool cache_on, fault::FaultPlan &plan) {
        runtime::Platform plat;
        runtime::PlatformConfig pc;
        pc.drx_cache.enabled = cache_on;
        plat.setPlatformConfig(pc);
        const runtime::DeviceId drx = plat.addDrx("drx0", {});
        plat.setFaultPlan(&plan);
        runtime::Context ctx = plat.createContext();
        const runtime::BufferId in = ctx.createBuffer(input);
        const runtime::BufferId out = ctx.createBuffer();
        runtime::Event ev = ctx.queue(drx).enqueueRestructure(kernel, in,
                                                              out);
        ctx.finish();
        return std::tuple(ev.ok(), ev.retries(), ev.completeTime(),
                          ctx.read(out));
    };

    fault::FaultPlan plan_on;
    plan_on.scriptMachine(0, fault::MachineAction::Fault);
    fault::FaultPlan plan_off;
    plan_off.scriptMachine(0, fault::MachineAction::Fault);

    const auto on = run(true, plan_on);
    const auto off = run(false, plan_off);
    EXPECT_TRUE(std::get<0>(on));
    EXPECT_EQ(std::get<1>(on), 1u);
    EXPECT_EQ(on, off); // same status, retries, finish tick and bytes
    EXPECT_EQ(std::get<3>(on),
              restructure::executeOnCpu(kernel, input));
}

TEST(DrxCacheRuntime, RetryReusesCompiledPlan)
{
    const Kernel kernel = restructure::textRecordRestructure(4096, 64, 80);
    const Bytes input = randomInput(kernel.input, 17);

    runtime::Platform plat;
    const runtime::DeviceId drx = plat.addDrx("drx0", {});
    fault::FaultPlan plan;
    plan.scriptMachine(0, fault::MachineAction::Fault);
    plat.setFaultPlan(&plan);

    runtime::Context ctx = plat.createContext();
    const runtime::BufferId in = ctx.createBuffer(input);
    const runtime::BufferId out = ctx.createBuffer();
    runtime::Event ev = ctx.queue(drx).enqueueRestructure(kernel, in, out);
    ctx.finish();
    EXPECT_TRUE(ev.ok());
    EXPECT_EQ(ev.retries(), 1u);
    // One compile at enqueue; the retry re-installed the same plan
    // instead of recompiling (no second lookup, no second miss).
    EXPECT_EQ(plat.drxCache().counters().compile_misses, 1u);
    EXPECT_EQ(plat.drxCache().counters().compile_hits, 0u);

    // A second enqueue of the same kernel hits.
    const runtime::BufferId out2 = ctx.createBuffer();
    runtime::Event ev2 = ctx.queue(drx).enqueueRestructure(kernel, in,
                                                           out2);
    ctx.finish();
    EXPECT_TRUE(ev2.ok());
    EXPECT_EQ(plat.drxCache().counters().compile_hits, 1u);
    EXPECT_EQ(ctx.read(out2), ctx.read(out));
}

// --------------------------------------------- parallel jobs identity

TEST(DrxCacheExec, JobsOneVsEightIdentical)
{
    // Thread-local process() caches keep workers independent, so the
    // simulated cycle counts cannot depend on the worker count.
    const auto make_thunks = [] {
        std::vector<std::function<std::uint64_t()>> thunks;
        for (int rep = 0; rep < 3; ++rep) {
            for (const Kernel &kernel : fullCatalog()) {
                thunks.push_back([kernel] {
                    const Bytes input = randomInput(kernel.input, 11);
                    DrxMachine machine;
                    return runKernelOnDrxCached(kernel, input, machine)
                        .total_cycles;
                });
            }
        }
        return thunks;
    };

    exec::ScenarioRunner serial(1);
    const std::vector<std::uint64_t> a =
        serial.run<std::uint64_t>(make_thunks());
    exec::ScenarioRunner wide(8);
    const std::vector<std::uint64_t> b =
        wide.run<std::uint64_t>(make_thunks());
    EXPECT_EQ(a, b);
    for (std::uint64_t cycles : a)
        EXPECT_GT(cycles, 0u);
}
