/**
 * @file
 * DRX ISA-level tests: the Transposition Engine functions (TransB,
 * Deint*), segmented sums, run-patterned streams, descriptor gathers,
 * and the disassembler - exercised through hand-written programs.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "drx/machine.hh"
#include "drx/program.hh"

using namespace dmx;
using namespace dmx::drx;

namespace
{

std::vector<std::uint8_t>
floatBytes(const std::vector<float> &v)
{
    std::vector<std::uint8_t> b(v.size() * 4);
    std::memcpy(b.data(), v.data(), b.size());
    return b;
}

std::vector<float>
toFloats(const std::vector<std::uint8_t> &b)
{
    std::vector<float> v(b.size() / 4);
    std::memcpy(v.data(), b.data(), b.size());
    return v;
}

} // namespace

TEST(DrxIsa, TranspositionEngineBlockTranspose)
{
    DrxMachine m;
    const auto in = m.alloc(6 * 4);
    const auto out = m.alloc(6 * 4);
    const auto data = floatBytes({1, 2, 3, 4, 5, 6}); // 2x3
    m.write(in, data.data(), data.size());

    Program p = ProgramBuilder("transb")
                    .loop(0, 1)
                    .streamCfg(0, in, DType::F32, 0, 0, 0, 6)
                    .streamCfg(1, out, DType::F32, 0, 0, 0, 6)
                    .sync()
                    .load(0, 0)
                    .transpose(1, 0, 2, 3)
                    .store(1, 1)
                    .build();
    m.run(p);
    EXPECT_EQ(toFloats(m.read(out, 24)),
              (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(DrxIsa, TransposeShapeMismatchIsFatal)
{
    DrxMachine m;
    const auto in = m.alloc(6 * 4);
    Program p = ProgramBuilder("bad")
                    .loop(0, 1)
                    .streamCfg(0, in, DType::F32, 0, 0, 0, 6)
                    .sync()
                    .load(0, 0)
                    .transpose(1, 0, 4, 4) // 16 != 6
                    .build();
    EXPECT_THROW(m.run(p), std::runtime_error);
}

TEST(DrxIsa, DeinterleaveSplitsEvenOdd)
{
    DrxMachine m;
    const auto in = m.alloc(8 * 4);
    const auto out_e = m.alloc(4 * 4);
    const auto out_o = m.alloc(4 * 4);
    const auto data = floatBytes({0, 10, 1, 11, 2, 12, 3, 13});
    m.write(in, data.data(), data.size());

    Program p = ProgramBuilder("deint")
                    .loop(0, 1)
                    .streamCfg(0, in, DType::F32, 0, 0, 0, 8)
                    .streamCfg(1, out_e, DType::F32, 0, 0, 0, 4)
                    .streamCfg(2, out_o, DType::F32, 0, 0, 0, 4)
                    .sync()
                    .load(0, 0)
                    .compute1(VFunc::DeintEven, 1, 0)
                    .compute1(VFunc::DeintOdd, 2, 0)
                    .store(1, 1)
                    .store(2, 2)
                    .build();
    m.run(p);
    EXPECT_EQ(toFloats(m.read(out_e, 16)),
              (std::vector<float>{0, 1, 2, 3}));
    EXPECT_EQ(toFloats(m.read(out_o, 16)),
              (std::vector<float>{10, 11, 12, 13}));
}

TEST(DrxIsa, SegSumComputesChunkSums)
{
    DrxMachine m;
    const auto in = m.alloc(8 * 4);
    const auto out = m.alloc(4 * 4);
    const auto data = floatBytes({1, 2, 3, 4, 5, 6, 7, 8});
    m.write(in, data.data(), data.size());

    Program p = ProgramBuilder("segsum")
                    .loop(0, 1)
                    .streamCfg(0, in, DType::F32, 0, 0, 0, 8)
                    .streamCfg(1, out, DType::F32, 0, 0, 0, 4)
                    .sync()
                    .load(0, 0)
                    .segsum(1, 0, 2)
                    .store(1, 1)
                    .build();
    m.run(p);
    EXPECT_EQ(toFloats(m.read(out, 16)),
              (std::vector<float>{3, 7, 11, 15}));
}

TEST(DrxIsa, SegSumRejectsNonDividingWidth)
{
    DrxMachine m;
    const auto in = m.alloc(8 * 4);
    Program p = ProgramBuilder("segbad")
                    .loop(0, 1)
                    .streamCfg(0, in, DType::F32, 0, 0, 0, 8)
                    .sync()
                    .load(0, 0)
                    .segsum(1, 0, 3)
                    .build();
    EXPECT_THROW(m.run(p), std::runtime_error);
}

TEST(DrxIsa, RunPatternedStreamGathersStridedFields)
{
    // 4 "rows" of 4 floats; collect column pairs (fields) via runs.
    DrxMachine m;
    const auto in = m.alloc(16 * 4);
    const auto out = m.alloc(8 * 4);
    std::vector<float> rows;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            rows.push_back(static_cast<float>(10 * r + c));
    const auto data = floatBytes(rows);
    m.write(in, data.data(), data.size());

    // Tile of 8 = 4 runs of length 2, runs 4 elements apart: extracts
    // the first two columns of every row.
    Program p = ProgramBuilder("runs")
                    .loop(0, 1)
                    .streamCfg(0, in, DType::F32, 0, 0, 0, 8)
                    .runs(2, 4)
                    .streamCfg(1, out, DType::F32, 0, 0, 0, 8)
                    .sync()
                    .load(0, 0)
                    .store(1, 0)
                    .build();
    const RunResult res = m.run(p);
    EXPECT_EQ(toFloats(m.read(out, 32)),
              (std::vector<float>{0, 1, 10, 11, 20, 21, 30, 31}));
    // Only the touched bytes are read functionally.
    EXPECT_EQ(res.bytes_read, 8u * 4u);
}

TEST(DrxIsa, RunsMustDivideTile)
{
    ProgramBuilder b("bad");
    b.streamCfg(0, 0, DType::F32, 0, 0, 0, 8);
    EXPECT_THROW(b.runs(3, 4), std::runtime_error);
    ProgramBuilder c("bad2");
    c.loop(0, 1);
    EXPECT_THROW(c.runs(2, 4), std::runtime_error); // not a cfg.stream
}

TEST(DrxIsa, DescriptorGatherExpandsRuns)
{
    DrxMachine m;
    const auto table = m.alloc(16 * 4);
    const auto idx = m.alloc(2 * 4);
    const auto out = m.alloc(6 * 4);
    std::vector<float> vals;
    for (int i = 0; i < 16; ++i)
        vals.push_back(static_cast<float>(i));
    const auto data = floatBytes(vals);
    m.write(table, data.data(), data.size());
    const std::int32_t starts[2] = {4, 9};
    m.write(idx, reinterpret_cast<const std::uint8_t *>(starts), 8);

    // Each descriptor fetches a run of 3 consecutive elements.
    Program p = ProgramBuilder("desc_gather")
                    .loop(0, 1)
                    .streamCfg(0, idx, DType::I32, 0, 0, 0, 2)
                    .streamCfg(1, table, DType::F32, 0, 0, 0, 6)
                    .streamCfg(2, out, DType::F32, 0, 0, 0, 6)
                    .sync()
                    .load(0, 0)
                    .gather(1, 1, 0, 3)
                    .store(2, 1)
                    .build();
    m.run(p);
    EXPECT_EQ(toFloats(m.read(out, 24)),
              (std::vector<float>{4, 5, 6, 9, 10, 11}));
}

TEST(DrxIsa, ScalarOpsViaSingleElementTiles)
{
    // "Scalar mode": tiles of one element exercise the serial path the
    // paper keeps for pointer-chasing work.
    DrxMachine m;
    const auto in = m.alloc(4 * 4);
    const auto out = m.alloc(4 * 4);
    const auto data = floatBytes({1, 2, 3, 4});
    m.write(in, data.data(), data.size());
    Program p = ProgramBuilder("scalar")
                    .loop(0, 4)
                    .streamCfg(0, in, DType::F32, 1, 0, 0, 1)
                    .streamCfg(1, out, DType::F32, 1, 0, 0, 1)
                    .sync()
                    .load(0, 0)
                    .compute1(VFunc::AddS, 1, 0, 100.0f)
                    .store(1, 1)
                    .build();
    m.run(p);
    EXPECT_EQ(toFloats(m.read(out, 16)),
              (std::vector<float>{101, 102, 103, 104}));
}

TEST(DrxIsa, MinMaxAbsExpClampFunctions)
{
    DrxMachine m;
    const auto in = m.alloc(4 * 4);
    const auto out = m.alloc(4 * 4);
    const auto data = floatBytes({-2, -0.5f, 0.5f, 2});
    m.write(in, data.data(), data.size());
    Program p = ProgramBuilder("chain")
                    .loop(0, 1)
                    .streamCfg(0, in, DType::F32, 0, 0, 0, 4)
                    .streamCfg(1, out, DType::F32, 0, 0, 0, 4)
                    .sync()
                    .load(0, 0)
                    .compute1(VFunc::Abs, 1, 0)          // |x|
                    .compute1(VFunc::MinS, 2, 1, 1.0f)   // min(|x|,1)
                    .compute1(VFunc::MaxS, 3, 2, 0.75f)  // max(...,0.75)
                    .store(1, 3)
                    .build();
    m.run(p);
    EXPECT_EQ(toFloats(m.read(out, 16)),
              (std::vector<float>{1.0f, 0.75f, 0.75f, 1.0f}));
}

TEST(DrxIsa, DisassemblyNamesEveryMnemonic)
{
    Program p = ProgramBuilder("dis")
                    .loop(0, 2)
                    .streamCfg(0, 0x40, DType::F16, 4, 2, 0, 4)
                    .runs(2, 8)
                    .sync()
                    .load(0, 0)
                    .gather(1, 0, 0, 4)
                    .compute(VFunc::Mac, 2, 1, 1)
                    .segsum(3, 2, 2)
                    .reset(4)
                    .append(4, 3)
                    .fill(5, 1.5f, 4)
                    .transpose(6, 5, 2, 2)
                    .store(0, 0)
                    .build();
    const std::string d = p.disassemble();
    for (const char *needle :
         {"cfg.loop", "cfg.stream", "f16", "ld.tile", "ld.gather",
          "v.mac", "v.segsum", "v.reset", "v.append", "v.fill",
          "v.transb", "st.tile", "sync", "halt"}) {
        EXPECT_NE(d.find(needle), std::string::npos)
            << "missing '" << needle << "' in:\n" << d;
    }
}

TEST(DrxIsa, InstructionCountAndICacheAccounting)
{
    DrxMachine m;
    const auto in = m.alloc(64 * 4);
    Program p = ProgramBuilder("count")
                    .loop(0, 8)
                    .streamCfg(0, in, DType::F32, 8, 0, 0, 8)
                    .sync()
                    .load(0, 0)
                    .compute1(VFunc::MulS, 1, 0, 2.0f)
                    .store(0, 1)
                    .build();
    const RunResult res = m.run(p);
    // cfg.loop + cfg.stream + sync + halt issue once; 3 body
    // instructions replay for each of the 8 iterations.
    EXPECT_EQ(res.dyn_instructions, 4u + 24u);
}
