/**
 * @file
 * Coverage for the collective simulations (sys/collectives.cc):
 * golden-value pins for the default Figure 17 configuration, structural
 * properties (speedup, scaling, generation sensitivity), determinism,
 * and the negative paths (too-few participants, zero-length payload).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sys/collectives.hh"

using namespace dmx;
using namespace dmx::sys;

namespace
{

CollectiveConfig
configFor(unsigned n)
{
    CollectiveConfig cfg;
    cfg.n_accels = n;
    return cfg;
}

} // namespace

// Golden values for the Fig. 17 default configuration (8 MiB payload,
// Gen3, 8 accelerators), pinned from the reference implementation at
// the table's printed precision. A change here is a change to the
// collective model and must be deliberate.
TEST(Collectives, GoldenBroadcastEightAccels)
{
    const CollectiveResult r = simulateBroadcast(configFor(8));
    EXPECT_NEAR(r.baseline_ms, 13.55, 0.01);
    EXPECT_NEAR(r.dmx_ms, 5.60, 0.01);
    EXPECT_NEAR(r.speedup(), 2.42, 0.01);
}

TEST(Collectives, GoldenAllReduceEightAccels)
{
    const CollectiveResult r = simulateAllReduce(configFor(8));
    EXPECT_NEAR(r.baseline_ms, 69.19, 0.01);
    EXPECT_NEAR(r.dmx_ms, 10.57, 0.01);
    EXPECT_NEAR(r.speedup(), 6.54, 0.01);
}

TEST(Collectives, DeterministicAcrossRuns)
{
    for (unsigned n : {4u, 8u, 16u}) {
        const CollectiveResult a = simulateBroadcast(configFor(n));
        const CollectiveResult b = simulateBroadcast(configFor(n));
        EXPECT_EQ(a.baseline_ms, b.baseline_ms) << n;
        EXPECT_EQ(a.dmx_ms, b.dmx_ms) << n;
        const CollectiveResult c = simulateAllReduce(configFor(n));
        const CollectiveResult d = simulateAllReduce(configFor(n));
        EXPECT_EQ(c.baseline_ms, d.baseline_ms) << n;
        EXPECT_EQ(c.dmx_ms, d.dmx_ms) << n;
    }
}

TEST(Collectives, DmxBeatsBaselineAtEveryScale)
{
    for (unsigned n : {4u, 8u, 16u, 32u}) {
        EXPECT_GT(simulateBroadcast(configFor(n)).speedup(), 1.0) << n;
        EXPECT_GT(simulateAllReduce(configFor(n)).speedup(), 1.0) << n;
    }
}

TEST(Collectives, BaselineLatencyGrowsWithParticipants)
{
    // The driver issues baseline DMAs sequentially, so more
    // participants mean strictly more baseline time; all-reduce gains
    // grow with scale (the paper's Fig. 17 trend).
    double prev_bc = 0, prev_ar = 0, prev_ar_speedup = 0;
    for (unsigned n : {4u, 8u, 16u, 32u}) {
        const CollectiveResult bc = simulateBroadcast(configFor(n));
        const CollectiveResult ar = simulateAllReduce(configFor(n));
        EXPECT_GT(bc.baseline_ms, prev_bc) << n;
        EXPECT_GT(ar.baseline_ms, prev_ar) << n;
        EXPECT_GT(ar.speedup(), prev_ar_speedup) << n;
        prev_bc = bc.baseline_ms;
        prev_ar = ar.baseline_ms;
        prev_ar_speedup = ar.speedup();
    }
}

TEST(Collectives, NewerPcieGenerationIsNoSlower)
{
    CollectiveConfig g3 = configFor(8);
    CollectiveConfig g5 = configFor(8);
    g5.gen = pcie::Generation::Gen5;
    EXPECT_LE(simulateBroadcast(g5).baseline_ms,
              simulateBroadcast(g3).baseline_ms);
    EXPECT_LE(simulateBroadcast(g5).dmx_ms,
              simulateBroadcast(g3).dmx_ms);
    EXPECT_LE(simulateAllReduce(g5).dmx_ms,
              simulateAllReduce(g3).dmx_ms);
}

TEST(Collectives, RejectsFewerThanTwoParticipants)
{
    EXPECT_THROW(simulateBroadcast(configFor(0)), std::runtime_error);
    EXPECT_THROW(simulateBroadcast(configFor(1)), std::runtime_error);
    EXPECT_THROW(simulateAllReduce(configFor(0)), std::runtime_error);
    EXPECT_THROW(simulateAllReduce(configFor(1)), std::runtime_error);
}

TEST(Collectives, ZeroLengthPayloadCostsOnlyFixedOverheads)
{
    // A zero-byte collective is well-formed: no transfer time, but the
    // CPU restructuring (baseline) and DRX processing (DMX) still run,
    // so both latencies stay finite and non-negative.
    CollectiveConfig cfg = configFor(4);
    cfg.bytes = 0;
    const CollectiveResult bc = simulateBroadcast(cfg);
    EXPECT_GE(bc.baseline_ms, 0.0);
    EXPECT_GE(bc.dmx_ms, 0.0);
    EXPECT_LT(bc.baseline_ms, simulateBroadcast(configFor(4)).baseline_ms);
    const CollectiveResult ar = simulateAllReduce(cfg);
    EXPECT_GE(ar.baseline_ms, 0.0);
    EXPECT_GE(ar.dmx_ms, 0.0);
}
