/**
 * @file
 * Integration tests: complete Table I pipelines executed functionally
 * through the OpenCL-style runtime (accelerator kernels + DRX
 * restructuring + p2p copies), validated against direct host-side
 * computation of the same pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/random.hh"
#include "kernels/aes.hh"
#include "kernels/fft.hh"
#include "kernels/hashjoin.hh"
#include "kernels/lz.hh"
#include "kernels/regex.hh"
#include "kernels/svm.hh"
#include "restructure/catalog.hh"
#include "restructure/cpu_exec.hh"
#include "runtime/runtime.hh"

using namespace dmx;
using runtime::Bytes;

namespace
{

Bytes
toBytes(const std::vector<float> &v)
{
    Bytes b(v.size() * 4);
    std::memcpy(b.data(), v.data(), b.size());
    return b;
}

std::vector<float>
toFloats(const Bytes &b)
{
    std::vector<float> v(b.size() / 4);
    std::memcpy(v.data(), b.data(), b.size());
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// Sound detection: audio -> FFT accel -> DRX mel -> SVM accel. The
// labels coming out of the simulated platform must equal a pure
// host-side computation of the identical pipeline.

TEST(Integration, SoundDetectionPipelineMatchesHostComputation)
{
    constexpr std::size_t fft_size = 128, hop = 64;
    constexpr std::size_t frames = 30, bins = 65, mels = 16, classes = 3;

    std::vector<float> audio((frames - 1) * hop + fft_size);
    for (std::size_t i = 0; i < audio.size(); ++i)
        audio[i] = std::sin(0.05f * static_cast<float>(i)) +
                   0.3f * std::sin(0.21f * static_cast<float>(i));

    kernels::LinearSvm svm(mels, classes);
    Rng rng(31);
    for (auto &w : svm.weights())
        w = static_cast<float>(rng.uniform(-1, 1));

    // ---- host-side ground truth.
    const auto stft = kernels::stft(audio, fft_size, hop);
    std::vector<float> inter;
    for (const auto &c : stft.values) {
        inter.push_back(c.real());
        inter.push_back(c.imag());
    }
    const auto mel_kernel =
        restructure::melSpectrogram(frames, bins, mels);
    const auto mel_bytes =
        restructure::executeOnCpu(mel_kernel, toBytes(inter));
    const auto expect_labels =
        svm.predictBatch(toFloats(mel_bytes), frames);

    // ---- the same pipeline through the platform.
    runtime::Platform plat;
    const auto fft_dev = plat.addAccelerator(
        "fft", accel::Domain::FFT,
        [&](const Bytes &in, kernels::OpCount &ops) {
            const auto s = kernels::stft(toFloats(in), fft_size, hop,
                                         &ops);
            std::vector<float> out;
            for (const auto &c : s.values) {
                out.push_back(c.real());
                out.push_back(c.imag());
            }
            return toBytes(out);
        });
    const auto drx_dev = plat.addDrx("drx", {});
    const auto svm_dev = plat.addAccelerator(
        "svm", accel::Domain::SVM,
        [&](const Bytes &in, kernels::OpCount &ops) {
            const auto labels =
                svm.predictBatch(toFloats(in), frames, &ops);
            Bytes out;
            for (auto l : labels)
                out.push_back(static_cast<std::uint8_t>(l));
            return out;
        });

    runtime::Context ctx = plat.createContext();
    const auto b0 = ctx.createBuffer(toBytes(audio));
    const auto b1 = ctx.createBuffer();
    const auto b2 = ctx.createBuffer();
    const auto b3 = ctx.createBuffer();
    const auto b4 = ctx.createBuffer();
    const auto b5 = ctx.createBuffer();
    ctx.queue(fft_dev).enqueueKernel(b0, b1);
    ctx.queue(fft_dev).enqueueCopy(b1, b2, drx_dev);
    ctx.finish();
    ctx.queue(drx_dev).enqueueRestructure(mel_kernel, b2, b3);
    ctx.queue(drx_dev).enqueueCopy(b3, b4, svm_dev);
    ctx.finish();
    ctx.queue(svm_dev).enqueueKernel(b4, b5);
    ctx.finish();

    const Bytes &labels = ctx.read(b5);
    ASSERT_EQ(labels.size(), expect_labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i)
        EXPECT_EQ(labels[i], expect_labels[i]) << "frame " << i;
    EXPECT_GT(plat.now(), 0u);
}

// ---------------------------------------------------------------------
// Personal info redaction: encrypted text -> AES accel -> DRX record
// reblock -> regex accel. The redacted text must contain no SSNs and
// preserve everything else.

TEST(Integration, PiiRedactionPipelineRedactsExactly)
{
    constexpr std::size_t record = 64, padded = 80;
    std::string text;
    Rng rng(8);
    while (text.size() < 64 * record) {
        if (text.size() % record == 17)
            text += "123-45-6789";
        text += static_cast<char>('a' + rng.below(26));
    }
    text.resize(64 * record);

    const kernels::AesKey key{9, 9, 9};
    const kernels::AesBlock iv{4, 4};
    const std::vector<std::uint8_t> plain(text.begin(), text.end());
    const auto sealed = kernels::gcmEncrypt(key, iv, plain);

    runtime::Platform plat;
    const auto aes_dev = plat.addAccelerator(
        "aes", accel::Domain::Crypto,
        [&](const Bytes &in, kernels::OpCount &ops) {
            kernels::GcmSealed s;
            s.ciphertext = in;
            s.tag = sealed.tag;
            bool ok = false;
            auto out = kernels::gcmDecrypt(key, iv, s, ok, &ops);
            EXPECT_TRUE(ok);
            return out;
        });
    const auto drx_dev = plat.addDrx("drx", {});
    const auto re_dev = plat.addAccelerator(
        "regex", accel::Domain::Regex,
        [](const Bytes &in, kernels::OpCount &ops) {
            const kernels::Regex ssn("\\d\\d\\d-\\d\\d-\\d\\d\\d\\d");
            const std::string s(in.begin(), in.end());
            const std::string red = kernels::redact(ssn, s, '#', &ops);
            return Bytes(red.begin(), red.end());
        });

    runtime::Context ctx = plat.createContext();
    const auto b0 = ctx.createBuffer(Bytes(sealed.ciphertext));
    const auto b1 = ctx.createBuffer();
    const auto b2 = ctx.createBuffer();
    const auto b3 = ctx.createBuffer();
    const auto b4 = ctx.createBuffer();
    const auto b5 = ctx.createBuffer();
    ctx.queue(aes_dev).enqueueKernel(b0, b1);
    ctx.queue(aes_dev).enqueueCopy(b1, b2, drx_dev);
    ctx.finish();
    const auto reblock = restructure::textRecordRestructure(
        text.size(), record, padded);
    ctx.queue(drx_dev).enqueueRestructure(reblock, b2, b3);
    ctx.queue(drx_dev).enqueueCopy(b3, b4, re_dev);
    ctx.finish();
    ctx.queue(re_dev).enqueueKernel(b4, b5);
    ctx.finish();

    const std::string redacted(ctx.read(b5).begin(), ctx.read(b5).end());
    // No SSN survives.
    EXPECT_EQ(kernels::Regex("\\d\\d\\d-\\d\\d-\\d\\d\\d\\d")
                  .findAll(redacted)
                  .size(),
              0u);
    // Non-PII characters survive reblocking + padding untouched: check
    // the first record's prefix (before any redaction span).
    EXPECT_EQ(redacted.substr(0, 17), text.substr(0, 17));
    // Records are padded to the target width with NULs.
    EXPECT_EQ(redacted.size() % padded, 0u);
}

// ---------------------------------------------------------------------
// Database: tables -> LZ decompress accel -> DRX partition+columnarize
// -> hash join accel. The join result must equal joining the original
// tables directly.

TEST(Integration, HashJoinPipelinePreservesJoinSemantics)
{
    constexpr std::size_t rows = 1u << 10;
    kernels::Table build, probe;
    Rng rng(5);
    for (std::size_t r = 0; r < rows; ++r) {
        build.add(static_cast<std::int64_t>(rng.below(64)),
                  static_cast<std::int64_t>(r));
        probe.add(static_cast<std::int64_t>(rng.below(96)),
                  static_cast<std::int64_t>(1000 + r));
    }
    const auto expect = kernels::hashJoin(build, probe);

    const auto probe_ser = probe.serialize();
    const auto probe_lz = kernels::lzCompress(probe_ser);

    runtime::Platform plat;
    const auto lz_dev = plat.addAccelerator(
        "lz", accel::Domain::Decompression,
        [](const Bytes &in, kernels::OpCount &ops) {
            return kernels::lzDecompress(in, &ops);
        });
    const auto drx_dev = plat.addDrx("drx", {});
    const auto join_dev = plat.addAccelerator(
        "join", accel::Domain::HashJoin,
        [&](const Bytes &in, kernels::OpCount &ops) {
            // The accelerator consumes the columnar layout: field 0
            // (keys) then field 1 (payloads), row order permuted by the
            // DRX's partitioning - rebuild a Table view from it.
            const std::size_t n = in.size() / 16;
            kernels::Table t;
            for (std::size_t r = 0; r < n; ++r) {
                std::int64_t k, p;
                std::memcpy(&k, &in[r * 8], 8);
                std::memcpy(&p, &in[n * 8 + r * 8], 8);
                t.add(k, p);
            }
            const auto joined = kernels::hashJoin(build, t, &ops);
            Bytes out(joined.size() * sizeof(kernels::JoinedRow));
            std::memcpy(out.data(), joined.data(), out.size());
            return out;
        });

    runtime::Context ctx = plat.createContext();
    const auto b0 = ctx.createBuffer(Bytes(probe_lz));
    const auto b1 = ctx.createBuffer();
    const auto b2 = ctx.createBuffer();
    const auto b3 = ctx.createBuffer();
    const auto b4 = ctx.createBuffer();
    const auto b5 = ctx.createBuffer();
    ctx.queue(lz_dev).enqueueKernel(b0, b1);
    ctx.queue(lz_dev).enqueueCopy(b1, b2, drx_dev);
    ctx.finish();
    ctx.queue(drx_dev).enqueueRestructure(
        restructure::dbColumnarize(rows, true), b2, b3);
    ctx.queue(drx_dev).enqueueCopy(b3, b4, join_dev);
    ctx.finish();
    ctx.queue(join_dev).enqueueKernel(b4, b5);
    ctx.finish();

    const Bytes &out = ctx.read(b5);
    std::vector<kernels::JoinedRow> got(out.size() /
                                        sizeof(kernels::JoinedRow));
    std::memcpy(got.data(), out.data(), out.size());

    // The DRX's hash partitioning permutes probe order, so compare as
    // multisets.
    auto key3 = [](const kernels::JoinedRow &r) {
        return std::tuple<std::int64_t, std::int64_t, std::int64_t>(
            r.key, r.left_payload, r.right_payload);
    };
    std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>>
        a, b;
    for (const auto &r : expect)
        a.push_back(key3(r));
    for (const auto &r : got)
        b.push_back(key3(r));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// The DRX keeps functioning across repeated enqueues on the same
// device (allocator reset between kernels; no state leakage).

TEST(Integration, RepeatedRestructuresOnOneDrx)
{
    runtime::Platform plat;
    const auto drx_dev = plat.addDrx("drx", {});
    runtime::Context ctx = plat.createContext();

    const auto kernel = restructure::brainSignalRestructure(8, 64, 16);
    for (int round = 0; round < 5; ++round) {
        std::vector<float> in(kernel.input.elems());
        for (std::size_t i = 0; i < in.size(); ++i)
            in[i] = std::sin(static_cast<float>(i + round));
        const auto b_in = ctx.createBuffer(toBytes(in));
        const auto b_out = ctx.createBuffer();
        ctx.queue(drx_dev).enqueueRestructure(kernel, b_in, b_out);
        ctx.finish();
        EXPECT_EQ(ctx.read(b_out),
                  restructure::executeOnCpu(kernel, toBytes(in)))
            << "round " << round;
    }
}
