/**
 * @file
 * Unit tests for the cache model and hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"

using namespace dmx;
using namespace dmx::mem;

TEST(CacheTest, ColdMissThenHit)
{
    Cache c(CacheParams{"c", 1024, 64, 2});
    EXPECT_EQ(c.access(0x100, false), AccessResult::Miss);
    EXPECT_EQ(c.access(0x100, false), AccessResult::Hit);
    EXPECT_EQ(c.access(0x13f, false), AccessResult::Hit); // same line
    EXPECT_EQ(c.access(0x140, false), AccessResult::Miss); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheTest, LruEvictsOldest)
{
    // 2-way, 64 B lines, 2 sets (256 B total).
    Cache c(CacheParams{"c", 256, 64, 2});
    // Three lines mapping to set 0: line addresses 0, 2, 4 (stride 128).
    c.access(0 * 128, false);
    c.access(1 * 128, false);
    c.access(0 * 128, false);      // touch 0 so 1 is LRU
    c.access(2 * 128, false);      // evicts line 1
    EXPECT_EQ(c.access(0 * 128, false), AccessResult::Hit);
    EXPECT_EQ(c.access(1 * 128, false), AccessResult::Miss);
}

TEST(CacheTest, WritebackCountsDirtyEvictions)
{
    Cache c(CacheParams{"c", 128, 64, 1}); // direct-mapped, 2 sets
    c.access(0, true);           // dirty line in set 0
    c.access(128, false);        // evicts it -> writeback
    EXPECT_EQ(c.writebacks(), 1u);
    c.access(256, false);        // clean eviction -> no writeback
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheTest, ResetClearsState)
{
    Cache c(CacheParams{"c", 1024, 64, 2});
    c.access(0, true);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.access(0, false), AccessResult::Miss);
}

TEST(CacheTest, MpkiComputation)
{
    Cache c(CacheParams{"c", 1024, 64, 2});
    for (int i = 0; i < 10; ++i)
        c.access(static_cast<Addr>(i) * 64, false); // 10 misses
    EXPECT_DOUBLE_EQ(c.mpki(1000), 10.0);
    EXPECT_DOUBLE_EQ(c.mpki(0), 0.0);
}

TEST(CacheTest, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(CacheParams{"c", 1000, 60, 2}),
                 std::runtime_error); // non-pow2 line
    EXPECT_THROW(Cache(CacheParams{"c", 1024, 64, 0}),
                 std::runtime_error); // zero ways
    EXPECT_THROW(Cache(CacheParams{"c", 192, 64, 2}),
                 std::runtime_error); // non-pow2 sets
}

TEST(CacheTest, StreamingThrashesSmallCache)
{
    // Streaming a working set much larger than the cache: ~every new
    // line misses. This is the mechanism behind the paper's restructuring
    // MPKI numbers.
    Cache c(CacheParams{"c", 32 * 1024, 64, 8});
    const std::uint64_t bytes = 4 * 1024 * 1024;
    for (std::uint64_t a = 0; a < bytes; a += 4)
        c.access(a, false);
    const double miss_rate =
        static_cast<double>(c.misses()) / static_cast<double>(c.accesses());
    // One miss per 16 accesses (64 B line / 4 B element).
    EXPECT_NEAR(miss_rate, 1.0 / 16.0, 0.001);
}

TEST(HierarchyTest, L2CatchesL1Misses)
{
    Hierarchy h;
    h.data(0x1000, false);         // L1D miss, L2 miss
    h.data(0x1000, false);         // L1D hit
    EXPECT_EQ(h.l1d().misses(), 1u);
    EXPECT_EQ(h.l2().misses(), 1u);
    EXPECT_EQ(h.l1d().hits(), 1u);
    EXPECT_EQ(h.l2().accesses(), 1u); // only the L1 miss reached L2
}

TEST(HierarchyTest, FetchGoesToL1I)
{
    Hierarchy h;
    h.fetch(0x400000);
    h.fetch(0x400000);
    EXPECT_EQ(h.l1i().accesses(), 2u);
    EXPECT_EQ(h.l1i().misses(), 1u);
    EXPECT_EQ(h.l1d().accesses(), 0u);
}

TEST(HierarchyTest, ReportMpki)
{
    Hierarchy h;
    for (Addr a = 0; a < 64 * 100; a += 64)
        h.data(a, false); // 100 L1D misses
    h.retire(10000);
    const MpkiReport rep = h.report();
    EXPECT_DOUBLE_EQ(rep.l1d, 10.0);
    EXPECT_EQ(rep.instructions, 10000u);
    EXPECT_GT(rep.l2, 0.0);
}

TEST(HierarchyTest, SmallLoopFitsInL1I)
{
    // A tight instruction loop (the paper: restructuring kernels have a
    // tiny instruction working set, L1I MPKI ~2.3 vs CloudSuite's 7.8).
    Hierarchy h;
    constexpr Addr loop_base = 0x10000;
    constexpr Addr loop_bytes = 4 * 1024; // fits in 32 KB L1I
    for (int iter = 0; iter < 1000; ++iter) {
        for (Addr pc = loop_base; pc < loop_base + loop_bytes; pc += 16) {
            h.fetch(pc);
            h.retire();
        }
    }
    const MpkiReport rep = h.report();
    EXPECT_LT(rep.l1i, 0.5); // essentially all hits after warmup
}

TEST(HierarchyTest, ResetZeroesAllLevels)
{
    Hierarchy h;
    h.data(0, true);
    h.fetch(0);
    h.retire(5);
    h.reset();
    EXPECT_EQ(h.l1d().accesses(), 0u);
    EXPECT_EQ(h.l1i().accesses(), 0u);
    EXPECT_EQ(h.l2().accesses(), 0u);
    EXPECT_EQ(h.instructions(), 0u);
}
