/**
 * @file
 * Performance-regression checker over the {"figure", "metrics"} JSON
 * files emitted by the bench harnesses' --json flag.
 *
 * Usage:
 *   bench_diff <baseline.json> <candidate.json> [--tolerance PCT]
 *              [--perturb PCT] [--figure NAME]
 *
 * Each metric present in the baseline is compared against the
 * candidate. Whether a change is a regression depends on the metric's
 * direction, inferred from its name: latency/time/cycles/bytes/energy
 * metrics regress when they grow, speedup/throughput/gain/reduction
 * metrics regress when they shrink. A metric missing from the
 * candidate is always an error. Exit status is 0 when every metric is
 * within tolerance and 1 otherwise, so CI can gate on it directly.
 *
 * Metrics whose name starts with "wall_", "cache_", or "config_" are
 * *informational*: host wall-clock and cache-counter values are
 * printed with their deltas but never gate (wall time is inherently
 * nondeterministic, and cache totals legitimately change with cache
 * configuration), "config_" metrics merely echo the run's own
 * parameters for provenance, and their absence from either file is
 * not an error. Simulated metrics keep zero-tolerance gating
 * regardless.
 *
 * A file may hold several reports (one {"figure", "metrics"} object
 * per line, the BENCH_seed.json layout); --figure NAME selects which
 * one to compare, defaulting to the first. The figure names of the
 * two selected reports must agree.
 *
 * --perturb PCT is a self-test hook: it scales every candidate metric
 * in the regressing direction by PCT percent before comparing, which
 * must trip the checker (CI runs it and asserts a nonzero exit).
 *
 * --wall-summary replaces the comparison entirely: it prints a
 * base/cand/ratio table of every "wall_" metric the two reports share
 * and always exits 0. Wall time never gates - the mode exists so a CI
 * log (or a human) can eyeball host-side speedups without hand-diffing
 * two JSON files.
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

namespace
{

struct Report
{
    std::string figure;
    std::map<std::string, double> metrics;
};

/**
 * Minimal parser for the flat bench-report schema. Not a general JSON
 * parser: it accepts exactly what BenchReport::write() produces plus
 * insignificant whitespace. A file may concatenate several reports
 * (one object per line); @p want selects by figure name, "" takes the
 * first report in the file.
 */
bool
parseReport(const std::string &path, const std::string &want, Report &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_diff: cannot read '%s'\n",
                     path.c_str());
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    std::size_t pos = 0;
    const auto skipWs = [&] {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    };
    const auto expect = [&](char c) {
        skipWs();
        if (pos >= text.size() || text[pos] != c) {
            std::fprintf(stderr,
                         "bench_diff: %s: expected '%c' at offset %zu\n",
                         path.c_str(), c, pos);
            return false;
        }
        ++pos;
        return true;
    };
    const auto parseString = [&](std::string &s) {
        if (!expect('"'))
            return false;
        s.clear();
        while (pos < text.size() && text[pos] != '"')
            s += text[pos++];
        return expect('"');
    };
    const auto parseNumber = [&](double &v) {
        skipWs();
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        v = std::strtod(start, &end);
        if (end == start) {
            std::fprintf(stderr,
                         "bench_diff: %s: bad number at offset %zu\n",
                         path.c_str(), pos);
            return false;
        }
        pos += static_cast<std::size_t>(end - start);
        return true;
    };

    while (true) {
        skipWs();
        if (pos >= text.size()) {
            std::fprintf(stderr,
                         "bench_diff: %s: no report%s%s found\n",
                         path.c_str(), want.empty() ? "" : " for figure ",
                         want.c_str());
            return false;
        }
        Report rep;
        if (!expect('{'))
            return false;
        bool first = true;
        while (true) {
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                break;
            }
            if (!first && !expect(','))
                return false;
            first = false;
            std::string key;
            if (!parseString(key) || !expect(':'))
                return false;
            if (key == "figure") {
                if (!parseString(rep.figure))
                    return false;
            } else if (key == "metrics") {
                if (!expect('{'))
                    return false;
                bool mfirst = true;
                while (true) {
                    skipWs();
                    if (pos < text.size() && text[pos] == '}') {
                        ++pos;
                        break;
                    }
                    if (!mfirst && !expect(','))
                        return false;
                    mfirst = false;
                    std::string name;
                    double value = 0;
                    if (!parseString(name) || !expect(':') ||
                        !parseNumber(value))
                        return false;
                    rep.metrics[name] = value;
                }
            } else {
                std::fprintf(stderr,
                             "bench_diff: %s: unknown key '%s'\n",
                             path.c_str(), key.c_str());
                return false;
            }
        }
        if (want.empty() || rep.figure == want) {
            out = std::move(rep);
            return true;
        }
    }
}

/**
 * @return true when larger values of the metric are better, inferred
 *         from conventional name fragments (speedup, throughput, ...);
 *         false when smaller is better (latency, cycles, bytes, ...)
 */
bool
higherIsBetter(const std::string &name)
{
    static const char *const higher[] = {"speedup",    "throughput",
                                         "gain",       "reduction",
                                         "rps",        "bandwidth"};
    static const char *const lower[] = {"latency", "_ms",     "time",
                                        "cycles",  "bytes",   "energy",
                                        "mpki",    "percent", "_pct"};
    for (const char *frag : higher)
        if (name.find(frag) != std::string::npos)
            return true;
    for (const char *frag : lower)
        if (name.find(frag) != std::string::npos)
            return false;
    // Unknown metrics are treated as higher-is-better so that a
    // shrinking value is flagged; a growing one passes.
    return true;
}

/**
 * @return true for metrics that are reported but never gate a
 *         comparison: host-side values (wall-clock, cache counters)
 *         and "config_" echoes of the run's own parameters.
 */
bool
informational(const std::string &name)
{
    return name.rfind("wall_", 0) == 0 || name.rfind("cache_", 0) == 0 ||
           name.rfind("config_", 0) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string base_path, cand_path, figure;
    double tolerance_pct = 5.0;
    double perturb_pct = 0.0;
    bool wall_summary = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
            tolerance_pct = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--perturb") == 0 &&
                   i + 1 < argc) {
            perturb_pct = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--figure") == 0 &&
                   i + 1 < argc) {
            figure = argv[++i];
        } else if (std::strcmp(argv[i], "--wall-summary") == 0) {
            wall_summary = true;
        } else if (base_path.empty()) {
            base_path = argv[i];
        } else if (cand_path.empty()) {
            cand_path = argv[i];
        } else {
            std::fprintf(stderr, "bench_diff: unexpected arg '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    if (base_path.empty() || cand_path.empty()) {
        std::fprintf(stderr,
                     "usage: bench_diff <baseline.json> <candidate.json>"
                     " [--tolerance PCT] [--perturb PCT]"
                     " [--figure NAME] [--wall-summary]\n");
        return 2;
    }

    Report base, cand;
    if (!parseReport(base_path, figure, base) ||
        !parseReport(cand_path, figure, cand))
        return 2;
    if (!base.figure.empty() && !cand.figure.empty() &&
        base.figure != cand.figure) {
        std::fprintf(stderr,
                     "bench_diff: figure mismatch: '%s' vs '%s'\n",
                     base.figure.c_str(), cand.figure.c_str());
        return 2;
    }

    if (wall_summary) {
        // Informational host-side timing table; never gates, exit 0.
        std::printf("wall-clock summary (%s):\n",
                    base.figure.empty() ? "unnamed" : base.figure.c_str());
        std::printf("%-40s %12s %12s %8s\n", "metric", "base", "cand",
                    "ratio");
        std::size_t shown = 0;
        for (const auto &[name, base_v] : base.metrics) {
            if (name.rfind("wall_", 0) != 0)
                continue;
            const auto it = cand.metrics.find(name);
            if (it == cand.metrics.end())
                continue;
            const double ratio =
                base_v == 0.0 ? 0.0 : it->second / base_v;
            std::printf("%-40s %12.6g %12.6g %7.3fx\n", name.c_str(),
                        base_v, it->second, ratio);
            ++shown;
        }
        if (shown == 0)
            std::printf("(no shared wall_ metrics)\n");
        return 0;
    }

    int regressions = 0;
    int missing = 0;
    std::size_t gated = 0;
    for (const auto &[name, base_v] : base.metrics) {
        const bool info = informational(name);
        const auto it = cand.metrics.find(name);
        if (it == cand.metrics.end()) {
            if (info)
                continue; // host-side extras may come and go freely
            // A gated metric that vanished is a harness bug or a
            // renamed key, not a perf delta - fail loudly per key so
            // the break is attributable without rerunning anything.
            std::printf("MISSING  %-40s baseline %.6g, no such key in "
                        "'%s'\n",
                        name.c_str(), base_v, cand_path.c_str());
            ++missing;
            continue;
        }
        const bool up_good = higherIsBetter(name);
        double cand_v = it->second;
        if (perturb_pct != 0.0 && !info) {
            const double f = 1.0 + perturb_pct / 100.0;
            cand_v = up_good ? cand_v / f : cand_v * f;
        }
        const double delta_pct =
            base_v == 0.0 ? (cand_v == 0.0 ? 0.0 : 100.0)
                          : 100.0 * (cand_v - base_v) / std::fabs(base_v);
        if (info) {
            // Reported for the human, excluded from gating: wall time
            // is nondeterministic and cache totals depend on the arm.
            std::printf("info     %-40s base %.6g cand %.6g (%+.2f%%)\n",
                        name.c_str(), base_v, cand_v, delta_pct);
            continue;
        }
        ++gated;
        const bool regressed = up_good ? delta_pct < -tolerance_pct
                                       : delta_pct > tolerance_pct;
        std::printf("%-8s %-40s base %.6g cand %.6g (%+.2f%%, %s)\n",
                    regressed ? "REGRESS" : "ok", name.c_str(), base_v,
                    cand_v, delta_pct,
                    up_good ? "higher-better" : "lower-better");
        if (regressed)
            ++regressions;
    }

    if (regressions || missing) {
        std::printf("bench_diff: %d metric(s) regressed beyond %.1f%%, "
                    "%d baseline metric(s) missing from candidate\n",
                    regressions, tolerance_pct, missing);
        return 1;
    }
    std::printf("bench_diff: all %zu metric(s) within %.1f%%\n",
                gated, tolerance_pct);
    return 0;
}
