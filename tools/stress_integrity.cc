/**
 * @file
 * Data-integrity stress driver: sweeps per-hop corruption rate x
 * end-to-end protection mode over protected restructure chains
 * (integrity::runChain) and reports the silent-data-corruption escape
 * rate, detection/recovery counts and makespan inflation per point.
 *
 * Every trial runs a multi-stage chain under a seeded IntegrityPlan
 * injecting silent DMA payload bit flips plus link-CRC replays, then
 * compares the delivered bytes against a golden corruption-free run:
 * an *escape* is a chain that reports success with wrong bytes. The
 * headline check is the integrity contract: end-to-end checksums must
 * drive escapes to zero at every corruption rate, under both mismatch
 * policies, at bounded recovery overhead.
 *
 * Independent trials fan across exec::ScenarioRunner workers; results
 * commit in submission order, so output is byte-identical at every
 * --jobs level.
 *
 * Usage:
 *   stress_integrity [--trials N] [--stages K] [--seed S]
 *                    [--descriptor] [--jobs N] [--json PATH]
 *
 * --descriptor runs every chain under ChainMode::Descriptor (linked-
 * descriptor submission, 2-stage segments) instead of the legacy
 * per-hop loop; the integrity contract must hold identically there.
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "integrity/chain.hh"
#include "integrity/integrity.hh"
#include "runtime/runtime.hh"

using namespace dmx;
using namespace dmx::integrity;

namespace
{

/** Protection modes under test. */
enum class Mode
{
    Off,          ///< no e2e protection: corruption flows through
    E2eRetransmit,///< per-hop checksums, mismatch -> hop retransmit
    E2eRollback,  ///< per-hop checksums, mismatch -> rollback + replay
};

const char *
modeKey(Mode m)
{
    switch (m) {
      case Mode::Off:           return "off";
      case Mode::E2eRetransmit: return "retx";
      case Mode::E2eRollback:   return "rollb";
    }
    return "?";
}

/** One sweep point: a (corruption rate, protection mode) pair. */
struct Point
{
    double rate;
    Mode mode;
};

/** Stable metric suffix, e.g. "r0.0010_retx". */
std::string
pointKey(const Point &p)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "r%.4f_%s", p.rate, modeKey(p.mode));
    return buf;
}

/** A kernel that increments every byte. */
runtime::Bytes
bump(const runtime::Bytes &in, kernels::OpCount &ops)
{
    runtime::Bytes out = in;
    for (auto &b : out)
        ++b;
    ops.int_ops += out.size();
    ops.bytes_read += in.size();
    ops.bytes_written += out.size();
    return out;
}

/** Result of one chain trial. */
struct Trial
{
    bool ok = false;
    bool escape = false;      ///< reported success, delivered bad bytes
    unsigned mismatches = 0;  ///< corruptions the e2e checksum caught
    unsigned recoveries = 0;  ///< retransmits + rollbacks + failovers
    Tick makespan = 0;
};

constexpr std::size_t payload_bytes = 2048;

runtime::Bytes
chainInput()
{
    runtime::Bytes b(payload_bytes);
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::uint8_t>(i * 7 + 3);
    return b;
}

/** Run one chain under @p point with the trial's own seeded plan. */
Trial
runTrial(const Point &point, unsigned stages, std::uint64_t seed,
         const runtime::Bytes &golden, bool descriptor)
{
    runtime::Platform plat;
    std::vector<ChainStage> chain;
    for (unsigned s = 0; s < stages; ++s) {
        ChainStage st;
        st.device = plat.addAccelerator(
            "a" + std::to_string(s),
            s % 2 ? accel::Domain::SVM : accel::Domain::FFT, bump);
        chain.push_back(st);
    }

    IntegritySpec spec;
    spec.seed = seed;
    spec.payload_flip_prob = point.rate;
    spec.link_crc_prob = point.rate;
    IntegrityPlan plan(spec);
    plat.setIntegrityPlan(&plan);

    ChainConfig cfg;
    cfg.protection = point.mode == Mode::Off ? ProtectionMode::Off
                                             : ProtectionMode::E2eChecksum;
    cfg.policy = point.mode == Mode::E2eRollback
                     ? MismatchPolicy::RollbackReplay
                     : MismatchPolicy::HopRetransmit;
    cfg.checkpoints = point.mode == Mode::E2eRollback;
    cfg.max_recoveries = 512;
    if (descriptor) {
        cfg.mode = ChainMode::Descriptor;
        cfg.segment_stages = 2;
    }

    const ChainReport rep = runChain(plat, chain, chainInput(), cfg);

    Trial t;
    t.ok = rep.ok;
    t.escape = rep.ok && rep.output != golden;
    t.mismatches = rep.mismatches_detected;
    t.recoveries = rep.recoveries();
    t.makespan = rep.makespan;
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "stress_integrity");

    unsigned trials = 32;
    unsigned stages = 5;
    std::uint64_t seed = 7;
    bool descriptor = false;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) {
            if (i + 1 >= argc)
                dmx_fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--trials") == 0)
            trials = static_cast<unsigned>(
                std::strtoul(value("--trials"), nullptr, 10));
        else if (std::strcmp(argv[i], "--stages") == 0)
            stages = static_cast<unsigned>(
                std::strtoul(value("--stages"), nullptr, 10));
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = std::strtoull(value("--seed"), nullptr, 10);
        else if (std::strcmp(argv[i], "--descriptor") == 0)
            descriptor = true;
    }
    if (stages < 2)
        dmx_fatal("--stages must be >= 2 (a chain needs a hop)");

    bench::banner("Integrity stress - corruption rate x protection sweep",
                  "end-to-end data integrity & checkpointed recovery");
    if (descriptor)
        std::printf("chain submission: descriptor-chained "
                    "(2-stage segments)\n\n");

    const std::vector<double> rates{0.0, 1e-3, 1e-2, 5e-2};
    std::vector<Point> points;
    for (const double r : rates)
        for (const Mode m :
             {Mode::Off, Mode::E2eRetransmit, Mode::E2eRollback})
            points.push_back({r, m});

    // Golden bytes: the same chain, corruption-free and unprotected.
    const runtime::Bytes golden = [&] {
        runtime::Platform plat;
        std::vector<ChainStage> chain;
        for (unsigned s = 0; s < stages; ++s) {
            ChainStage st;
            st.device = plat.addAccelerator(
                "a" + std::to_string(s),
                s % 2 ? accel::Domain::SVM : accel::Domain::FFT, bump);
            chain.push_back(st);
        }
        const ChainReport rep = runChain(plat, chain, chainInput());
        if (!rep.ok)
            dmx_fatal("golden chain run failed");
        return rep.output;
    }();

    // One thunk per (point, trial); trials fan across workers.
    std::vector<std::function<Trial()>> thunks;
    for (const Point &p : points) {
        for (unsigned t = 0; t < trials; ++t) {
            const std::uint64_t trial_seed =
                seed * 1000003ull + t * 7919ull + 13;
            thunks.push_back([p, stages, trial_seed, &golden,
                              descriptor] {
                return runTrial(p, stages, trial_seed, golden,
                                descriptor);
            });
        }
    }
    const std::vector<Trial> results =
        bench::runSweep<Trial>(report, std::move(thunks));

    // Baseline makespan: corruption-free, protection off.
    Tick clean_ticks = 0;
    for (unsigned t = 0; t < trials; ++t)
        clean_ticks += results[t].makespan;

    Table tab("Integrity sweep (" + std::to_string(stages) +
              " stages, " + std::to_string(trials) +
              " trials per point)");
    tab.header({"corruption", "mode", "completed", "escapes",
                "escape rate", "detected", "recoveries",
                "makespan ticks", "inflation"});

    bool contract_holds = true;
    std::uint64_t protected_escapes = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        unsigned completed = 0, escapes = 0, detected = 0,
                 recoveries = 0;
        Tick ticks = 0;
        for (unsigned t = 0; t < trials; ++t) {
            const Trial &tr = results[i * trials + t];
            completed += tr.ok ? 1 : 0;
            escapes += tr.escape ? 1 : 0;
            detected += tr.mismatches;
            recoveries += tr.recoveries;
            ticks += tr.makespan;
        }
        const double escape_rate =
            completed ? static_cast<double>(escapes) / completed : 0.0;
        const double inflation =
            clean_ticks ? static_cast<double>(ticks) /
                              static_cast<double>(clean_ticks)
                        : 0.0;
        tab.row({Table::num(p.rate, 4), modeKey(p.mode),
                 std::to_string(completed), std::to_string(escapes),
                 Table::num(escape_rate, 3), std::to_string(detected),
                 std::to_string(recoveries),
                 std::to_string(ticks), Table::num(inflation, 3)});

        const std::string key = pointKey(p);
        report.metric("escapes_" + key, static_cast<double>(escapes));
        report.metric("detected_" + key, static_cast<double>(detected));
        report.metric("recoveries_" + key,
                      static_cast<double>(recoveries));
        report.metric("ticks_" + key, static_cast<double>(ticks));

        // The contract: e2e checksums kill every escape, at every
        // corruption rate, under both mismatch policies.
        if (p.mode != Mode::Off) {
            protected_escapes += escapes;
            if (escapes != 0)
                contract_holds = false;
        }
    }
    tab.print(std::cout);

    report.metric("sdc_contained", contract_holds ? 1.0 : 0.0);
    std::printf("integrity contract: %s (%llu escapes under e2e "
                "protection across %zu points)\n\n",
                contract_holds ? "PASS" : "FAIL",
                static_cast<unsigned long long>(protected_escapes),
                points.size() - rates.size());
    return report.write();
}
