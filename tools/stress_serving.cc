/**
 * @file
 * Serving stress driver: sweeps arrival-trace shape x offered load x
 * kernel fault rate over the serve::simulateServing engine in three
 * arms per point:
 *
 *  - plain:  trace-driven serving, no tail tolerance;
 *  - hedged: hedging on, unbudgeted (the retry-storm baseline);
 *  - tail:   hedging + per-tenant retry budgets + brownout control.
 *
 * Reports per-class SLO attainment, p50/p99/p999, goodput and the
 * hedge/budget/brownout counters, then checks the headline contract at
 * 2x load with 10% faults: the tail arm must cut latency-sensitive
 * p999 below the plain arm while keeping total attempts below the
 * unbudgeted hedged arm.
 *
 * Independent stress points fan across exec::ScenarioRunner workers;
 * results commit in submission order, so output is byte-identical at
 * every --jobs level.
 *
 * Usage:
 *   stress_serving [--requests N] [--devices D] [--seed S]
 *                  [--batch B] [--request-bytes BYTES]
 *                  [--jobs N] [--json PATH]
 */

#include <cstdio>
#include <cstring>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "serve/serve.hh"

using namespace dmx;
using namespace dmx::serve;

namespace
{

/** One sweep point: a (shape, load, fault-rate) triple. */
struct Point
{
    TraceShape shape;
    double load;
    double fault_rate;
};

enum class Arm { Plain, Hedged, Tail };

const char *
armName(Arm a)
{
    switch (a) {
      case Arm::Plain:  return "plain";
      case Arm::Hedged: return "hedged";
      case Arm::Tail:   return "tail";
    }
    return "?";
}

ServeConfig
makeConfig(const Point &p, Arm arm, unsigned requests, unsigned devices,
           std::uint64_t seed, unsigned batch,
           std::uint64_t request_bytes)
{
    ServeConfig cfg;
    cfg.overload.requests = requests;
    cfg.overload.devices = devices;
    cfg.overload.seed = seed;
    cfg.overload.batch = batch;
    cfg.overload.request_bytes = request_bytes;
    cfg.overload.load = p.load;
    cfg.overload.fault_rate = p.fault_rate;
    cfg.enabled = true;
    cfg.trace.shape = p.shape;
    if (arm != Arm::Plain)
        cfg.hedge.enabled = true;
    if (arm == Arm::Tail) {
        cfg.budget.enabled = true;
        cfg.budget.per_request = 0.5;
        cfg.brownout.enabled = true;
    }
    return cfg;
}

/** Stable metric suffix, e.g. "steady_l2.0_f0.10_tail". */
std::string
pointKey(const Point &p, Arm arm)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s_l%.1f_f%.2f_%s",
                  toString(p.shape).c_str(), p.load, p.fault_rate,
                  armName(arm));
    return buf;
}

constexpr Arm arms[] = {Arm::Plain, Arm::Hedged, Arm::Tail};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "stress_serving");

    unsigned requests = 240;
    unsigned devices = 4;
    std::uint64_t seed = 1;
    unsigned batch = 1;
    std::uint64_t request_bytes = 4096;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) {
            if (i + 1 >= argc)
                dmx_fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--requests") == 0)
            requests = static_cast<unsigned>(
                std::strtoul(value("--requests"), nullptr, 10));
        else if (std::strcmp(argv[i], "--devices") == 0)
            devices = static_cast<unsigned>(
                std::strtoul(value("--devices"), nullptr, 10));
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = std::strtoull(value("--seed"), nullptr, 10);
        else if (std::strcmp(argv[i], "--batch") == 0)
            batch = static_cast<unsigned>(
                std::strtoul(value("--batch"), nullptr, 10));
        else if (std::strcmp(argv[i], "--request-bytes") == 0)
            request_bytes =
                std::strtoull(value("--request-bytes"), nullptr, 10);
    }

    bench::banner("Serving stress - trace shape x load x fault sweep",
                  "hedged requests, retry budgets, brownout control");

    // Sweep-point config echo: the report is self-describing.
    report.metric("config_seed", static_cast<double>(seed));
    report.metric("config_requests", static_cast<double>(requests));
    report.metric("config_devices", static_cast<double>(devices));
    report.metric("config_batch", static_cast<double>(batch));
    report.metric("config_request_bytes",
                  static_cast<double>(request_bytes));

    const std::vector<Point> points{
        {TraceShape::Steady, 1.0, 0.0},
        {TraceShape::Steady, 2.0, 0.0},
        {TraceShape::Steady, 1.0, 0.1},
        {TraceShape::Steady, 2.0, 0.1},
        {TraceShape::Diurnal, 2.0, 0.1},
        {TraceShape::FlashCrowd, 2.0, 0.1},
        {TraceShape::HeavyTail, 2.0, 0.1},
    };

    std::vector<std::function<ServeStats()>> thunks;
    for (const Point &p : points) {
        for (const Arm arm : arms) {
            thunks.push_back([p, arm, requests, devices, seed, batch,
                              request_bytes] {
                return simulateServing(makeConfig(p, arm, requests,
                                                  devices, seed, batch,
                                                  request_bytes));
            });
        }
    }
    const std::vector<ServeStats> results =
        bench::runSweep<ServeStats>(report, std::move(thunks));

    Table t("Serving sweep (" + std::to_string(devices) + " devices, " +
            std::to_string(requests) + " requests per point)");
    t.header({"shape", "load", "faults", "arm", "goodput (rps)",
              "ls p99 (ms)", "ls p999 (ms)", "ls SLO", "batch SLO",
              "shed", "hedges", "attempts"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        for (std::size_t a = 0; a < 3; ++a) {
            const Arm arm = arms[a];
            const ServeStats &st = results[3 * i + a];
            const ClassStats &ls = st.latency_sensitive;
            t.row({toString(p.shape), Table::num(p.load, 1),
                   Table::num(p.fault_rate, 2), armName(arm),
                   Table::num(st.base.goodput_rps),
                   Table::num(ls.latency.p99_ms),
                   Table::num(ls.latency.p999_ms),
                   Table::num(ls.slo_attainment, 3),
                   Table::num(st.batch.slo_attainment, 3),
                   std::to_string(st.base.shed),
                   std::to_string(st.hedges_issued),
                   std::to_string(st.total_attempts)});
            const std::string key = pointKey(p, arm);
            report.metric("goodput_" + key, st.base.goodput_rps);
            report.metric("ls_p99_ms_" + key, ls.latency.p99_ms);
            report.metric("ls_p999_ms_" + key, ls.latency.p999_ms);
            report.metric("ls_slo_attain_" + key, ls.slo_attainment);
            report.metric("batch_slo_attain_" + key,
                          st.batch.slo_attainment);
            report.metric("shed_" + key,
                          static_cast<double>(st.base.shed));
            report.metric("hedges_" + key,
                          static_cast<double>(st.hedges_issued));
            report.metric("attempts_" + key,
                          static_cast<double>(st.total_attempts));
            report.metric("budget_denied_" + key,
                          static_cast<double>(st.budget_denied));
            report.metric("brownout_escalations_" + key,
                          static_cast<double>(st.brownout_escalations));
        }
    }
    t.print(std::cout);

    // Headline contract: at 2x load with 10% faults (steady trace),
    // hedging + budgets + brownout must cut the latency-sensitive p999
    // below the plain arm while bounding total attempts below the
    // unbudgeted hedged arm.
    const ServeStats *plain = nullptr, *hedged = nullptr,
                     *tail = nullptr;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        if (p.shape == TraceShape::Steady && p.load == 2.0 &&
            p.fault_rate == 0.1) {
            plain = &results[3 * i];
            hedged = &results[3 * i + 1];
            tail = &results[3 * i + 2];
        }
    }
    if (plain && hedged && tail) {
        const bool p999_cut = tail->latency_sensitive.latency.p999_ms <
                              plain->latency_sensitive.latency.p999_ms;
        const bool bounded =
            tail->total_attempts < hedged->total_attempts;
        Table c("Serving contract at steady 2.0x load, 10% faults");
        c.header({"metric", "plain", "hedged", "tail", "ok?"});
        c.row({"ls p999 (ms)",
               Table::num(plain->latency_sensitive.latency.p999_ms),
               Table::num(hedged->latency_sensitive.latency.p999_ms),
               Table::num(tail->latency_sensitive.latency.p999_ms),
               p999_cut ? "yes" : "NO"});
        c.row({"total attempts", std::to_string(plain->total_attempts),
               std::to_string(hedged->total_attempts),
               std::to_string(tail->total_attempts),
               bounded ? "yes" : "NO"});
        c.print(std::cout);
        report.metric("serving_contract",
                      (p999_cut && bounded) ? 1.0 : 0.0);
        std::printf("serving contract: %s (ls p999 %s, attempts %s)\n\n",
                    (p999_cut && bounded) ? "PASS" : "FAIL",
                    p999_cut ? "cut" : "NOT cut",
                    bounded ? "bounded" : "NOT bounded");
    }
    return report.write();
}
