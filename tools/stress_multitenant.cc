/**
 * @file
 * Multi-tenant stress driver: sweeps K concurrent closed-loop request
 * streams (tenant i runs suite app i mod 5) over one shared fabric and
 * reports per-tenant latency, throughput, slowdown vs running alone,
 * and Jain's fairness index. Independent stress points fan across
 * exec::ScenarioRunner workers; results commit in submission order, so
 * output is byte-identical at every --jobs level.
 *
 * Usage:
 *   stress_multitenant [--tenants K] [--requests R] [--placement P]
 *                      [--jobs N] [--json PATH]
 *
 * With --tenants the sweep is the single point K; without it the sweep
 * is 2,4,8,12,16 tenants.
 */

#include <algorithm>
#include <cstring>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "sys/multi_tenant.hh"

using namespace dmx;
using namespace dmx::sys;

namespace
{

Placement
parsePlacement(const char *s)
{
    for (Placement p :
         {Placement::AllCpu, Placement::MultiAxl, Placement::IntegratedDrx,
          Placement::StandaloneDrx, Placement::BumpInTheWire,
          Placement::PcieIntegrated}) {
        if (toString(p) == s)
            return p;
    }
    dmx_fatal("unknown placement '%s' (try e.g. bump-in-the-wire)", s);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "stress_multitenant");

    std::vector<unsigned> sweep{2, 4, 8, 12, 16};
    unsigned requests = 3;
    Placement placement = Placement::BumpInTheWire;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) {
            if (i + 1 >= argc)
                dmx_fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--tenants") == 0)
            sweep = {static_cast<unsigned>(
                std::strtoul(value("--tenants"), nullptr, 10))};
        else if (std::strcmp(argv[i], "--requests") == 0)
            requests = static_cast<unsigned>(
                std::strtoul(value("--requests"), nullptr, 10));
        else if (std::strcmp(argv[i], "--placement") == 0)
            placement = parsePlacement(value("--placement"));
    }

    bench::banner("Multi-tenant stress - K concurrent request streams",
                  "extends Sec. VII (shared-fabric contention)");

    // Echo the run configuration into the report (config_ metrics are
    // informational for bench_diff: provenance, never gated).
    report.metric("config_requests", static_cast<double>(requests));
    report.metric("config_placement",
                  static_cast<double>(static_cast<int>(placement)));
    report.metric("config_tenant_points",
                  static_cast<double>(sweep.size()));

    std::vector<std::function<MultiTenantStats()>> thunks;
    for (unsigned k : sweep) {
        thunks.push_back([k, requests, placement] {
            MultiTenantConfig cfg;
            cfg.tenants = k;
            cfg.requests_per_tenant = requests;
            cfg.placement = placement;
            return simulateMultiTenant(cfg, bench::suite());
        });
    }
    const std::vector<MultiTenantStats> points =
        bench::runSweep<MultiTenantStats>(report, std::move(thunks));

    Table t("Multi-tenant stress (" + toString(placement) + ")");
    t.header({"tenants", "agg latency (ms)", "agg tput (rps)",
              "worst slowdown (x)", "fairness"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const unsigned k = sweep[i];
        const MultiTenantStats &mt = points[i];
        double agg_tput = 0;
        for (const TenantStats &ts : mt.tenants)
            agg_tput += ts.throughput_rps;
        double worst_p99 = 0;
        std::uint64_t shed = 0, ddl = 0;
        for (const TenantStats &ts : mt.tenants) {
            worst_p99 = std::max(worst_p99, ts.p99_latency_ms);
            shed += ts.shed;
            ddl += ts.deadline_misses;
        }
        t.row({std::to_string(k),
               Table::num(mt.aggregate.avg_latency_ms),
               Table::num(agg_tput), Table::num(mt.worstSlowdown()),
               Table::num(mt.fairness, 3)});
        report.metric("latency_ms_k" + std::to_string(k),
                      mt.aggregate.avg_latency_ms);
        report.metric("fairness_k" + std::to_string(k), mt.fairness);
        report.metric("worst_slowdown_k" + std::to_string(k),
                      mt.worstSlowdown());
        report.metric("worst_p99_ms_k" + std::to_string(k), worst_p99);
        report.metric("shed_k" + std::to_string(k),
                      static_cast<double>(shed));
        report.metric("deadline_misses_k" + std::to_string(k),
                      static_cast<double>(ddl));
    }
    t.print(std::cout);

    // Per-tenant detail for the largest point. Shed and deadline-miss
    // counters read 0 unless overload protection (MultiTenantConfig::
    // robust) is switched on; p99 is over completed requests.
    const MultiTenantStats &last = points.back();
    Table d("Per-tenant detail, " + std::to_string(sweep.back()) +
            " tenants");
    d.header({"tenant", "app", "latency (ms)", "p99 (ms)", "solo (ms)",
              "slowdown (x)", "tput (rps)", "shed", "ddl miss"});
    for (std::size_t i = 0; i < last.tenants.size(); ++i) {
        const TenantStats &ts = last.tenants[i];
        d.row({std::to_string(i), ts.app_name, Table::num(ts.latency_ms),
               Table::num(ts.p99_latency_ms),
               Table::num(ts.solo_latency_ms), Table::num(ts.slowdown()),
               Table::num(ts.throughput_rps), std::to_string(ts.shed),
               std::to_string(ts.deadline_misses)});
    }
    d.print(std::cout);
    return report.write();
}
