/**
 * @file
 * Overload stress driver: sweeps offered load x kernel fault rate over
 * the open-loop sys::simulateOverload engine, once with overload
 * protection off (legacy) and once with the full protection stack on
 * (admission control, circuit breakers, credit-gated submission rings,
 * deadline budgets), and reports goodput, shed rate, p99 latency,
 * breaker open time and submission-ring overruns side by side.
 *
 * Independent stress points fan across exec::ScenarioRunner workers;
 * results commit in submission order, so output is byte-identical at
 * every --jobs level.
 *
 * Usage:
 *   stress_overload [--requests N] [--devices D] [--seed S]
 *                   [--batch B] [--request-bytes BYTES]
 *                   [--jobs N] [--json PATH]
 */

#include <cstdio>
#include <cstring>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "sys/overload.hh"

using namespace dmx;
using namespace dmx::sys;

namespace
{

/** One sweep point: a (load, fault-rate) pair. */
struct Point
{
    double load;
    double fault_rate;
};

/** The protection stack under test. */
robust::RobustConfig
protectedConfig()
{
    robust::RobustConfig rc;
    rc.backpressure.enabled = true;
    rc.admission.policy = robust::AdmissionPolicy::StaticCap;
    rc.admission.queue_depth_cap = 4;
    rc.breaker.enabled = true;
    return rc;
}

/** Stable metric suffix, e.g. "l2.0_f0.10". */
std::string
pointKey(const Point &p)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "l%.1f_f%.2f", p.load, p.fault_rate);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchReport report(argc, argv, "stress_overload");

    unsigned requests = 160;
    unsigned devices = 4;
    std::uint64_t seed = 1;
    unsigned batch = 1;
    std::uint64_t request_bytes = 4096;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) {
            if (i + 1 >= argc)
                dmx_fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--requests") == 0)
            requests = static_cast<unsigned>(
                std::strtoul(value("--requests"), nullptr, 10));
        else if (std::strcmp(argv[i], "--devices") == 0)
            devices = static_cast<unsigned>(
                std::strtoul(value("--devices"), nullptr, 10));
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = std::strtoull(value("--seed"), nullptr, 10);
        else if (std::strcmp(argv[i], "--batch") == 0)
            batch = static_cast<unsigned>(
                std::strtoul(value("--batch"), nullptr, 10));
        else if (std::strcmp(argv[i], "--request-bytes") == 0)
            request_bytes =
                std::strtoull(value("--request-bytes"), nullptr, 10);
    }

    bench::banner("Overload stress - open-loop load x fault sweep",
                  "overload protection & failure containment");

    // Echo the run configuration into the report (config_ metrics are
    // informational for bench_diff: provenance, never gated).
    report.metric("config_seed", static_cast<double>(seed));
    report.metric("config_requests", static_cast<double>(requests));
    report.metric("config_devices", static_cast<double>(devices));
    report.metric("config_batch", static_cast<double>(batch));
    report.metric("config_request_bytes",
                  static_cast<double>(request_bytes));

    const std::vector<Point> points{
        {0.5, 0.0}, {1.0, 0.0}, {2.0, 0.0},
        {0.5, 0.1}, {1.0, 0.1}, {2.0, 0.1}, {3.0, 0.1},
        {2.0, 0.5},
    };

    // Two thunks per point: legacy (protection off) then protected.
    std::vector<std::function<OverloadStats()>> thunks;
    for (const Point &p : points) {
        for (const bool prot : {false, true}) {
            thunks.push_back([p, prot, requests, devices, seed, batch,
                              request_bytes] {
                OverloadConfig cfg;
                cfg.requests = requests;
                cfg.devices = devices;
                cfg.seed = seed;
                cfg.batch = batch;
                cfg.request_bytes = request_bytes;
                cfg.load = p.load;
                cfg.fault_rate = p.fault_rate;
                if (prot) {
                    cfg.robust = protectedConfig();
                    cfg.deadline_factor = 16;
                }
                return simulateOverload(cfg);
            });
        }
    }
    const std::vector<OverloadStats> results =
        bench::runSweep<OverloadStats>(report, std::move(thunks));

    Table t("Overload sweep (" + std::to_string(devices) + " devices, " +
            std::to_string(requests) + " requests per point)");
    t.header({"load", "faults", "mode", "goodput (rps)", "shed",
              "p99 (ms)", "overflows", "breaker open (ms)",
              "stalls"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        for (const bool prot : {false, true}) {
            const OverloadStats &st = results[2 * i + (prot ? 1 : 0)];
            t.row({Table::num(p.load, 1), Table::num(p.fault_rate, 2),
                   prot ? "protected" : "legacy",
                   Table::num(st.goodput_rps),
                   std::to_string(st.shed), Table::num(st.p99_latency_ms),
                   std::to_string(st.queue_overflows),
                   Table::num(st.breaker_open_ms),
                   std::to_string(st.backpressure_stalls)});
            const std::string key =
                pointKey(p) + (prot ? "_prot" : "_legacy");
            report.metric("goodput_" + key, st.goodput_rps);
            report.metric("p99_ms_" + key, st.p99_latency_ms);
            report.metric("shed_" + key,
                          static_cast<double>(st.shed));
            report.metric("overflows_" + key,
                          static_cast<double>(st.queue_overflows));
            // Per-point config echo: load, fault rate, and whether the
            // protection stack (and its deadline budget) was armed.
            report.metric("config_load_" + key, p.load);
            report.metric("config_fault_rate_" + key, p.fault_rate);
            report.metric("config_robust_" + key, prot ? 1.0 : 0.0);
            report.metric("config_deadline_factor_" + key,
                          prot ? 16.0 : 0.0);
        }
    }
    t.print(std::cout);

    // Containment check at the headline point: >= 2x saturating load
    // with 10% kernel faults. Protection must buy strictly better
    // goodput and tail latency while keeping every submission ring
    // inside its credit window.
    Table c("Containment at 2.0x load, 10% faults");
    c.header({"metric", "legacy", "protected", "contained?"});
    const OverloadStats *legacy = nullptr, *prot = nullptr;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].load == 2.0 && points[i].fault_rate == 0.1) {
            legacy = &results[2 * i];
            prot = &results[2 * i + 1];
        }
    }
    if (legacy && prot) {
        const bool g = prot->goodput_rps > legacy->goodput_rps;
        const bool l = prot->p99_latency_ms < legacy->p99_latency_ms;
        const bool w =
            prot->max_ring_high_water <= prot->ring_credit_window &&
            prot->queue_overflows == 0;
        c.row({"goodput (rps)", Table::num(legacy->goodput_rps),
               Table::num(prot->goodput_rps), g ? "yes" : "NO"});
        c.row({"p99 latency (ms)", Table::num(legacy->p99_latency_ms),
               Table::num(prot->p99_latency_ms), l ? "yes" : "NO"});
        c.row({"ring high water (B)",
               std::to_string(legacy->max_ring_high_water),
               std::to_string(prot->max_ring_high_water),
               w ? "yes" : "NO"});
        c.print(std::cout);
        report.metric("contained",
                      (g && l && w) ? 1.0 : 0.0);
        std::printf("containment: %s (goodput %s, p99 %s, credit "
                    "window %s)\n\n",
                    (g && l && w) ? "PASS" : "FAIL",
                    g ? "up" : "NOT up", l ? "down" : "NOT down",
                    w ? "respected" : "VIOLATED");
    }
    return report.write();
}
